//! [`AlignedVec`]: fixed-length heap storage aligned to a cache line.
//!
//! The paper's one-memory-access property (§III.B.2) assumes a filter word
//! maps to *one* unit of memory transfer. A `Vec<u64>` only guarantees
//! 8-byte alignment, so a 512-bit [`WideWord`](crate::WideWord) — and any
//! word array read through 32/64-byte SIMD loads — could straddle two cache
//! lines, silently doubling the memory traffic the whole design is built to
//! avoid. `AlignedVec` allocates its buffer at [`CACHE_LINE_BYTES`]
//! alignment, so word `i` of a `w`-bit filter begins at byte `i·w/8` of a
//! line-aligned block and a word never spans two lines for any `w ≤ 512`
//! that divides the line.
//!
//! The container is deliberately minimal: fixed length at construction, no
//! growth, `Deref<Target = [T]>` for everything else. That is exactly the
//! shape of a filter's word array — sized once from the validated
//! configuration, then indexed forever.
//!
//! # Safety
//!
//! This module owns the only heap `unsafe` in the crate. The invariants,
//! upheld by every constructor and relied on by every method:
//!
//! 1. `ptr` came from `alloc::alloc` with `Self::layout(len)` (or is
//!    `NonNull::dangling()` when `len == 0`, which no method dereferences
//!    because the slice it produces is empty);
//! 2. all `len` elements are initialised before the constructor returns
//!    (on a panic mid-construction the guard drops the initialised prefix
//!    and frees the buffer);
//! 3. the buffer is freed with the same layout it was allocated with, and
//!    elements are dropped exactly once, in `Drop`.

#![allow(unsafe_code)]

use core::fmt;
use core::marker::PhantomData;
use core::ops::{Deref, DerefMut};
use core::ptr::NonNull;
use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};

/// The alignment (and assumed size) of one cache line, in bytes.
pub const CACHE_LINE_BYTES: usize = 64;

/// A fixed-length, cache-line-aligned boxed slice.
pub struct AlignedVec<T> {
    ptr: NonNull<T>,
    len: usize,
    _owns: PhantomData<T>,
}

// SAFETY: AlignedVec owns its elements exactly like Vec<T> does; sending or
// sharing it is sending or sharing the Ts themselves.
unsafe impl<T: Send> Send for AlignedVec<T> {}
// SAFETY: see above — &AlignedVec<T> only hands out &T.
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

/// Advises the kernel to back `[start, end)` with transparent huge
/// pages (`madvise(MADV_HUGEPAGE)`) — the engine behind
/// [`AlignedVec::advise_huge`] and [`AlignedVec::filled_huge`]. Issued
/// as a raw syscall because the workspace links no libc bindings; on
/// non-Linux/x86-64 targets, or when the kernel declines (THP disabled,
/// unaligned remainder), this is a no-op — correctness never depends on
/// it.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn advise_huge_raw(start: usize, end: usize) {
    const SYS_MADVISE: usize = 28;
    const MADV_HUGEPAGE: usize = 14;
    const PAGE: usize = 4096;
    let lo = (start + PAGE - 1) & !(PAGE - 1);
    let hi = end & !(PAGE - 1);
    if hi <= lo {
        return;
    }
    // SAFETY: madvise(MADV_HUGEPAGE) over a page-aligned subrange of
    // our own live allocation; it never unmaps or alters contents,
    // and the return value (advice taken or not) is ignorable.
    unsafe {
        let ret: isize;
        core::arch::asm!(
            "syscall",
            inlateout("rax") SYS_MADVISE as isize => ret,
            in("rdi") lo,
            in("rsi") hi - lo,
            in("rdx") MADV_HUGEPAGE,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        let _ = ret;
    }
}

/// No-op fallback for targets without the Linux/x86-64 syscall path.
#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
fn advise_huge_raw(_start: usize, _end: usize) {}

/// Drops the initialised prefix and frees the buffer if a constructor
/// panics before handing ownership to `AlignedVec`.
struct BuildGuard<T> {
    ptr: NonNull<T>,
    initialised: usize,
    layout: Layout,
}

impl<T> Drop for BuildGuard<T> {
    fn drop(&mut self) {
        // SAFETY: exactly `initialised` leading elements have been written
        // (invariant 2); the buffer came from `alloc` with `layout`.
        unsafe {
            core::ptr::slice_from_raw_parts_mut(self.ptr.as_ptr(), self.initialised)
                .drop_in_place();
            dealloc(self.ptr.as_ptr().cast(), self.layout);
        }
    }
}

impl<T> AlignedVec<T> {
    fn layout(len: usize) -> Layout {
        Layout::array::<T>(len)
            .and_then(|l| l.align_to(CACHE_LINE_BYTES))
            .expect("aligned allocation size overflows")
    }

    /// Allocates `len` elements, initialising element `i` to `f(i)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        if len == 0 {
            return AlignedVec {
                ptr: NonNull::dangling(),
                len: 0,
                _owns: PhantomData,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: `len > 0` and `T` is sized, so `layout` is non-zero-sized.
        let raw = unsafe { alloc(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout);
        };
        let mut guard = BuildGuard {
            ptr,
            initialised: 0,
            layout,
        };
        for i in 0..len {
            // SAFETY: `i < len`, so `ptr.add(i)` is in the allocation; the
            // slot is uninitialised, so `write` leaks nothing.
            unsafe { ptr.as_ptr().add(i).write(f(i)) };
            guard.initialised = i + 1;
        }
        core::mem::forget(guard);
        AlignedVec {
            ptr,
            len,
            _owns: PhantomData,
        }
    }

    /// Allocates `len` copies of `value`.
    pub fn filled(len: usize, value: T) -> Self
    where
        T: Clone,
    {
        Self::from_fn(len, |_| value.clone())
    }

    /// [`AlignedVec::filled`], but the fresh buffer is advised toward
    /// transparent huge pages *before* the fill first touches it. At
    /// hundreds of megabytes the eager fill is otherwise dominated by
    /// one minor page fault per 4 KB page; hugepage faults cut the
    /// fault count 512-fold, leaving a bandwidth-bound fill — and the
    /// buffer keeps its TLB advantage for whatever scattered access
    /// follows (the bulk builder's word array). Purely advisory, like
    /// [`AlignedVec::advise_huge`].
    pub fn filled_huge(len: usize, value: T) -> Self
    where
        T: Clone,
    {
        if len == 0 {
            return Self::filled(len, value);
        }
        let layout = Self::layout(len);
        // SAFETY: `len > 0` and `T` is sized, so `layout` is non-zero-sized.
        let raw = unsafe { alloc(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<T>()) else {
            handle_alloc_error(layout);
        };
        advise_huge_raw(raw as usize, raw as usize + layout.size());
        let mut guard = BuildGuard {
            ptr,
            initialised: 0,
            layout,
        };
        for i in 0..len {
            // SAFETY: `i < len`, so `ptr.add(i)` is in the allocation; the
            // slot is uninitialised, so `write` leaks nothing.
            unsafe { ptr.as_ptr().add(i).write(value.clone()) };
            guard.initialised = i + 1;
        }
        core::mem::forget(guard);
        AlignedVec {
            ptr,
            len,
            _owns: PhantomData,
        }
    }

    /// Advises the kernel to back this buffer with transparent huge
    /// pages (`madvise(MADV_HUGEPAGE)`). Purely advisory: sizing a TLB
    /// entry at 2 MB instead of 4 KB turns a gigabyte-scale buffer from
    /// ~250k TLB entries into ~500, which matters for buffers written
    /// at random offsets (the bulk builder's staging slab). Issued as a
    /// raw syscall because the workspace links no libc bindings; on
    /// non-Linux/x86-64 targets, or when the kernel declines (THP
    /// disabled, unaligned remainder), this is a no-op — correctness
    /// never depends on it. Call before the first write: already-
    /// faulted 4 KB pages are only collapsed lazily, if ever.
    pub fn advise_huge(&mut self) {
        let start = self.ptr.as_ptr() as usize;
        advise_huge_raw(start, start + self.len * core::mem::size_of::<T>());
    }

    /// Collects an iterator of exactly `len` elements.
    ///
    /// # Panics
    /// Panics if the iterator yields fewer than `len` elements.
    pub fn from_iter_exact(len: usize, iter: impl IntoIterator<Item = T>) -> Self {
        let mut iter = iter.into_iter();
        Self::from_fn(len, |_| iter.next().expect("iterator shorter than len"))
    }

    /// The fixed element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: invariants 1–2 — `ptr` is valid for `len` initialised
        // elements (dangling only when `len == 0`, which is a valid empty
        // slice pointer since it is non-null and aligned for `T`).
        unsafe { core::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: as `as_slice`, plus `&mut self` guarantees uniqueness.
        unsafe { core::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

/// Advises the kernel to back a live slice's pages with transparent
/// huge pages, exactly like [`AlignedVec::advise_huge`] but for any
/// caller-owned buffer — notably a `vec![0u64; n]`, whose allocation
/// rides `calloc`'s untouched copy-on-write zero pages (the `System`
/// allocator only takes that lazy path at default alignment, which is
/// precisely why a gigabyte-scale staging buffer should *not* be an
/// `AlignedVec`: at 64-byte alignment `alloc_zeroed` falls back to an
/// eager `memset` of the whole span). Advisory and content-preserving;
/// a no-op off Linux/x86-64 or when the kernel declines.
pub fn advise_huge_slice<T>(slice: &mut [T]) {
    let start = slice.as_mut_ptr() as usize;
    advise_huge_raw(start, start + core::mem::size_of_val(slice));
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len == 0 {
            return;
        }
        // SAFETY: invariant 3 — elements are initialised and dropped here
        // exactly once; the buffer came from `alloc` with `layout(len)`.
        unsafe {
            core::ptr::slice_from_raw_parts_mut(self.ptr.as_ptr(), self.len).drop_in_place();
            dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len));
        }
    }
}

impl<T> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Clone> Clone for AlignedVec<T> {
    fn clone(&self) -> Self {
        Self::from_fn(self.len, |i| self.as_slice()[i].clone())
    }
}

impl<T: PartialEq> PartialEq for AlignedVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for AlignedVec<T> {}

impl<T: fmt::Debug> fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<'a, T> IntoIterator for &'a AlignedVec<T> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a, T> IntoIterator for &'a mut AlignedVec<T> {
    type Item = &'a mut T;
    type IntoIter = core::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_is_cache_line_aligned() {
        for len in [1usize, 2, 63, 64, 65, 1000] {
            let v: AlignedVec<u64> = AlignedVec::filled(len, 0);
            assert_eq!(
                v.as_slice().as_ptr() as usize % CACHE_LINE_BYTES,
                0,
                "len {len}"
            );
        }
        let wide: AlignedVec<[u64; 8]> = AlignedVec::filled(7, [0; 8]);
        assert_eq!(wide.as_slice().as_ptr() as usize % CACHE_LINE_BYTES, 0);
    }

    #[test]
    fn behaves_like_a_slice() {
        let mut v = AlignedVec::from_fn(10, |i| i as u64);
        assert_eq!(v.len(), 10);
        assert_eq!(v[3], 3);
        v[3] = 99;
        assert_eq!(v.iter().sum::<u64>(), 1 + 2 + 99 + 4 + 5 + 6 + 7 + 8 + 9);
        for x in &mut v {
            *x += 1;
        }
        assert_eq!(v[0], 1);
    }

    #[test]
    fn empty_is_fine() {
        let v: AlignedVec<u64> = AlignedVec::from_fn(0, |_| unreachable!());
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[u64]);
        let w = v.clone();
        assert_eq!(v, w);
    }

    #[test]
    fn clone_and_eq_are_elementwise() {
        let v = AlignedVec::from_fn(100, |i| i * 3);
        let w = v.clone();
        assert_eq!(v, w);
        let mut x = v.clone();
        x[50] = 0;
        assert_ne!(v, x);
    }

    #[test]
    fn drops_every_element_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let v = AlignedVec::from_fn(25, |_| Counted);
        drop(v);
        assert_eq!(DROPS.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn filled_huge_matches_filled() {
        let a = AlignedVec::<u64>::filled(70_000, 0xdead_beef);
        let b = AlignedVec::<u64>::filled_huge(70_000, 0xdead_beef);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(b.as_slice().as_ptr() as usize % CACHE_LINE_BYTES, 0);
        let empty = AlignedVec::<u32>::filled_huge(0, 7);
        assert!(empty.is_empty());
    }

    #[test]
    fn huge_advice_preserves_contents() {
        // Advisory only: contents must be untouched, for both the
        // AlignedVec method and the free-slice helper.
        let mut v = AlignedVec::<u64>::filled(100_000, 3);
        v.advise_huge();
        assert!(v.iter().all(|&x| x == 3));
        let mut plain = vec![0u64; 100_000];
        super::advise_huge_slice(&mut plain);
        assert!(plain.iter().all(|&x| x == 0));
        plain[12_345] = 7;
        super::advise_huge_slice(&mut plain[..0]);
        assert_eq!(plain[12_345], 7);
    }

    #[test]
    fn from_iter_exact_roundtrips() {
        let v = AlignedVec::from_iter_exact(4, [10u64, 20, 30, 40]);
        assert_eq!(v.as_slice(), &[10, 20, 30, 40]);
    }

    #[test]
    fn works_with_non_clone_elements() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let v: AlignedVec<AtomicU64> = AlignedVec::from_fn(16, |i| AtomicU64::new(i as u64));
        assert_eq!(v[5].load(Ordering::Relaxed), 5);
        assert_eq!(v.as_slice().as_ptr() as usize % CACHE_LINE_BYTES, 0);
    }
}
