//! Runtime-dispatched bit kernels for the HCBF hot path.
//!
//! Every MPCBF operation bottoms out in a handful of one-word primitives —
//! masked popcounts ([`Word::rank`](crate::Word::rank) /
//! [`Word::rank_range`](crate::Word::rank_range)) and the shifting
//! insert/remove the hierarchy performs — so those ~10 instructions decide
//! the paper's entire speed claim (§IV, Table II). This module provides two
//! implementations of each primitive:
//!
//! * a **portable** one (safe Rust, mask-and-shift, branch-free via
//!   [`Word::mask_below`](crate::Word::mask_below)), the baseline every
//!   other kernel must match bit-for-bit; and
//! * a **BMI2** one for x86-64, where the primitives collapse to single
//!   instructions: `rank` is `BZHI + POPCNT`, and the hierarchy's
//!   insert-a-zero / remove-a-bit are one `PDEP` / `PEXT` each (depositing
//!   or extracting through the mask `!(1 << pos)` shifts the tail by one
//!   position in a single µop instead of a mask/shift/merge sequence).
//!
//! # Dispatch
//!
//! [`Kernel::active`] picks the implementation **once per process**: the
//! first call probes the CPU (`is_x86_feature_detected!`) and the
//! `MPCBF_KERNEL` environment override, then caches the verdict in a
//! static. Every later call is a single relaxed atomic load and a
//! perfectly-predicted branch — there is no per-call feature probe, and no
//! `-C target-cpu` flag is needed for release binaries to use the best
//! kernel on the machine they actually run on.
//!
//! Set `MPCBF_KERNEL=portable` to force the baseline (CI runs the
//! differential suite on both legs); `MPCBF_KERNEL=bmi2` requests the
//! accelerated kernel but still falls back to portable when the CPU lacks
//! BMI2 — the override can never cause an illegal-instruction fault.
//!
//! # Safety
//!
//! The `unsafe` here is exactly the set of `#[target_feature(enable =
//! "bmi2,popcnt")]` functions below. Each is only reachable through the
//! dispatchers in this module, and every dispatcher guards the call with
//! `Kernel::active() == Kernel::Bmi2`, which is only ever cached after
//! `is_x86_feature_detected!("bmi2")` (and `"popcnt"`) returned true on
//! this CPU. The intrinsics themselves dereference nothing — they are pure
//! register arithmetic — so the *only* safety obligation is CPU support,
//! discharged by the detection above.
#![allow(unsafe_code)]

use core::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation the process is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The safe mask-and-shift baseline; always available.
    Portable,
    /// x86-64 `BZHI`/`PDEP`/`PEXT`/`POPCNT` kernels (requires BMI2).
    Bmi2,
}

/// Cached dispatch verdict: 0 = not yet detected, 1 = portable, 2 = BMI2.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

impl Kernel {
    /// The kernel selected for this process (detection runs once; see the
    /// module docs for the `MPCBF_KERNEL` override).
    #[inline]
    pub fn active() -> Kernel {
        match ACTIVE.load(Ordering::Relaxed) {
            1 => Kernel::Portable,
            2 => Kernel::Bmi2,
            _ => Self::detect_and_cache(),
        }
    }

    /// True when the active kernel uses hardware-specific instructions.
    #[inline]
    pub fn is_accelerated(self) -> bool {
        self == Kernel::Bmi2
    }

    /// Stable name for logs and benchmark reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Portable => "portable",
            Kernel::Bmi2 => "bmi2",
        }
    }

    /// One-line description of what this CPU offers, for benchmark JSON.
    pub fn cpu_features() -> String {
        #[cfg(target_arch = "x86_64")]
        {
            format!(
                "x86_64 popcnt={} bmi2={}",
                std::arch::is_x86_feature_detected!("popcnt"),
                std::arch::is_x86_feature_detected!("bmi2"),
            )
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            std::env::consts::ARCH.to_string()
        }
    }

    #[cold]
    fn detect_and_cache() -> Kernel {
        let forced = std::env::var("MPCBF_KERNEL").ok();
        let kernel = match forced.as_deref() {
            Some("portable") => Kernel::Portable,
            // Any other value (including an explicit "bmi2") falls through
            // to detection: the override may request acceleration but can
            // never grant it on a CPU that lacks the instructions.
            _ => detect(),
        };
        ACTIVE.store(
            match kernel {
                Kernel::Portable => 1,
                Kernel::Bmi2 => 2,
            },
            Ordering::Relaxed,
        );
        kernel
    }
}

#[cfg(target_arch = "x86_64")]
fn detect() -> Kernel {
    if std::arch::is_x86_feature_detected!("bmi2") && std::arch::is_x86_feature_detected!("popcnt")
    {
        Kernel::Bmi2
    } else {
        Kernel::Portable
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> Kernel {
    Kernel::Portable
}

/// A fn-pointer bundle of the four u64 primitives, resolved once.
///
/// This is the batch-level dispatch surface: [`Kernel::batch`] resolves the
/// per-operation routing a single time, and the walks then either call the
/// bundled pointers or (for the inlined hot paths) branch on the carried
/// [`KernelOps::kernel`] tag — a register compare instead of the relaxed
/// atomic load [`Kernel::active`] costs on every word probe.
///
/// The `kernel` field is private on purpose: an accelerated bundle can only
/// be constructed by [`KernelOps::accelerated`] *after* runtime detection
/// confirmed BMI2 + POPCNT, so carrying the tag is a proof token the
/// dispatchers below may trust.
#[derive(Clone, Copy)]
pub struct KernelOps {
    kernel: Kernel,
    /// Ones strictly below bit `i` (`i ≥ 64` saturates).
    pub rank: fn(u64, u32) -> u32,
    /// Ones in `[a, b)`.
    pub rank_range: fn(u64, u32, u32) -> u32,
    /// Insert a zero at `pos`, shifting the tail up one.
    pub insert_zero: fn(u64, u32) -> u64,
    /// Remove the bit at `pos`, shifting the tail down one.
    pub remove_bit: fn(u64, u32) -> u64,
}

impl core::fmt::Debug for KernelOps {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("KernelOps")
            .field("kernel", &self.kernel)
            .finish()
    }
}

impl KernelOps {
    /// The portable mask-and-shift bundle; always available.
    #[inline]
    pub fn portable() -> KernelOps {
        KernelOps {
            kernel: Kernel::Portable,
            rank: rank_u64_portable,
            rank_range: rank_range_u64_portable,
            insert_zero: insert_zero_u64_portable,
            remove_bit: remove_bit_u64_portable,
        }
    }

    /// The best available bundle for *update* walks: BMI2 when this CPU
    /// has it (honouring the `MPCBF_KERNEL` override through
    /// [`Kernel::active`]), the portable bundle otherwise.
    #[inline]
    pub fn accelerated() -> KernelOps {
        #[cfg(target_arch = "x86_64")]
        if Kernel::active().is_accelerated() {
            return KernelOps {
                kernel: Kernel::Bmi2,
                rank: bmi2_checked::rank,
                rank_range: bmi2_checked::rank_range,
                insert_zero: bmi2_checked::insert_zero,
                remove_bit: bmi2_checked::remove_bit,
            };
        }
        KernelOps::portable()
    }

    /// Which kernel this bundle routes to.
    #[inline]
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }
}

/// Per-operation kernel routing for one batch, resolved by
/// [`Kernel::batch`].
///
/// Queries and updates want different kernels: the rank/insert/remove
/// primitives only pay off inside update walks (the word is already in a
/// register and the traversal is popcount-bound), while query walks are
/// single-bit tests that the portable short-circuit loop wins outright —
/// BENCH_kernels.json showed BMI2 query walks at 0.73x (u64) and 0.43x
/// (512-bit). So `query` is *always* the portable bundle and `update` is
/// accelerated when the CPU allows.
#[derive(Debug, Clone, Copy)]
pub struct BatchKernel {
    /// Bundle for query-side walks: always portable by construction.
    pub query: KernelOps,
    /// Bundle for update-side walks: BMI2 when detected.
    pub update: KernelOps,
}

impl Kernel {
    /// Resolves per-operation kernel routing once for a whole batch — one
    /// atomic load total, instead of one per word probe. See
    /// [`BatchKernel`] for why queries and updates route differently.
    #[inline]
    pub fn batch() -> BatchKernel {
        BatchKernel {
            query: KernelOps::portable(),
            update: KernelOps::accelerated(),
        }
    }
}

/// Safe wrappers over the BMI2 intrinsics, only ever reachable through a
/// [`KernelOps::accelerated`] bundle (whose constructor re-checked
/// detection), so the target-feature obligation is discharged before any
/// pointer to these functions exists.
#[cfg(target_arch = "x86_64")]
mod bmi2_checked {
    pub(super) fn rank(bits: u64, i: u32) -> u32 {
        debug_assert!(super::Kernel::active().is_accelerated());
        // SAFETY: only reachable via a bundle built after detection.
        unsafe { super::bmi2::rank_u64(bits, i) }
    }

    pub(super) fn rank_range(bits: u64, a: u32, b: u32) -> u32 {
        debug_assert!(super::Kernel::active().is_accelerated());
        // SAFETY: only reachable via a bundle built after detection.
        unsafe { super::bmi2::rank_range_u64(bits, a, b) }
    }

    pub(super) fn insert_zero(bits: u64, pos: u32) -> u64 {
        debug_assert!(super::Kernel::active().is_accelerated());
        // SAFETY: only reachable via a bundle built after detection.
        unsafe { super::bmi2::insert_zero_u64(bits, pos) }
    }

    pub(super) fn remove_bit(bits: u64, pos: u32) -> u64 {
        debug_assert!(super::Kernel::active().is_accelerated());
        // SAFETY: only reachable via a bundle built after detection.
        unsafe { super::bmi2::remove_bit_u64(bits, pos) }
    }
}

/// All ones strictly below bit `i` (`i ≥ 64` saturates to all ones) — the
/// portable twin of `BZHI`'s mask, with no undefined shift anywhere: the
/// double shift `(MAX >> 1) >> (63 - i)` keeps every shift amount in
/// `0..64` for every `i < 64`.
#[inline]
pub fn mask_below_u64(i: u32) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (u64::MAX >> 1) >> (63 - i)
    }
}

/// Portable `rank`: ones strictly below bit `i`.
#[inline]
pub fn rank_u64_portable(bits: u64, i: u32) -> u32 {
    (bits & mask_below_u64(i)).count_ones()
}

/// Portable `rank_range`: ones in `[a, b)` (`a ≤ b ≤ 64`).
#[inline]
pub fn rank_range_u64_portable(bits: u64, a: u32, b: u32) -> u32 {
    debug_assert!(a <= b && b <= 64);
    if a >= 64 {
        // Only reachable as [64, 64), which is empty.
        return 0;
    }
    ((bits >> a) & mask_below_u64(b - a)).count_ones()
}

/// Portable insert-a-zero at `pos`: the tail shifts up one, the former top
/// bit is discarded.
#[inline]
pub fn insert_zero_u64_portable(bits: u64, pos: u32) -> u64 {
    debug_assert!(pos < 64);
    let low = bits & mask_below_u64(pos);
    ((bits ^ low) << 1) | low
}

/// Portable remove-the-bit at `pos`: the tail shifts down one, the top bit
/// becomes zero.
#[inline]
pub fn remove_bit_u64_portable(bits: u64, pos: u32) -> u64 {
    debug_assert!(pos < 64);
    let low = bits & mask_below_u64(pos);
    ((bits >> 1) & !mask_below_u64(pos)) | low
}

#[cfg(target_arch = "x86_64")]
mod bmi2 {
    use core::arch::x86_64::{_bzhi_u64, _pdep_u64, _pext_u64};

    /// `rank` as `BZHI + POPCNT`. `_bzhi_u64` reads its index from the low
    /// 8 bits and leaves the word intact for indices ≥ 64 — exactly the
    /// saturation [`super::mask_below_u64`] specifies.
    #[target_feature(enable = "bmi2,popcnt")]
    pub unsafe fn rank_u64(bits: u64, i: u32) -> u32 {
        _bzhi_u64(bits, i).count_ones()
    }

    /// `rank_range` as one shift + `BZHI` + `POPCNT`.
    #[target_feature(enable = "bmi2,popcnt")]
    pub unsafe fn rank_range_u64(bits: u64, a: u32, b: u32) -> u32 {
        debug_assert!(a <= b && b <= 64);
        if a >= 64 {
            // Only reachable as [64, 64), which is empty.
            return 0;
        }
        _bzhi_u64(bits >> a, b - a).count_ones()
    }

    /// Insert-a-zero as a single `PDEP`: depositing `bits` through the
    /// mask `!(1 << pos)` keeps `[0, pos)` in place, forces bit `pos` to
    /// zero, shifts `[pos, 63)` up one, and discards the old top bit.
    #[target_feature(enable = "bmi2")]
    pub unsafe fn insert_zero_u64(bits: u64, pos: u32) -> u64 {
        debug_assert!(pos < 64);
        _pdep_u64(bits, !(1u64 << pos))
    }

    /// Remove-the-bit as a single `PEXT`: extracting through the same mask
    /// keeps `[0, pos)` in place, shifts `(pos, 64)` down one, and zeroes
    /// the top bit.
    #[target_feature(enable = "bmi2")]
    pub unsafe fn remove_bit_u64(bits: u64, pos: u32) -> u64 {
        debug_assert!(pos < 64);
        _pext_u64(bits, !(1u64 << pos))
    }
}

/// Dispatched `rank`: ones strictly below bit `i` (`i ≥ 64` saturates).
#[inline]
pub fn rank_u64(bits: u64, i: u32) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if Kernel::active().is_accelerated() {
        // SAFETY: `Kernel::Bmi2` is only cached after runtime detection
        // confirmed BMI2 + POPCNT on this CPU (see module docs).
        return unsafe { bmi2::rank_u64(bits, i) };
    }
    rank_u64_portable(bits, i)
}

/// Dispatched `rank_range`: ones in `[a, b)`.
#[inline]
pub fn rank_range_u64(bits: u64, a: u32, b: u32) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if Kernel::active().is_accelerated() {
        // SAFETY: `Kernel::Bmi2` is only cached after runtime detection
        // confirmed BMI2 + POPCNT on this CPU (see module docs).
        return unsafe { bmi2::rank_range_u64(bits, a, b) };
    }
    rank_range_u64_portable(bits, a, b)
}

/// Dispatched insert-a-zero at `pos` (`pos < 64`).
#[inline]
pub fn insert_zero_u64(bits: u64, pos: u32) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if Kernel::active().is_accelerated() {
        // SAFETY: `Kernel::Bmi2` is only cached after runtime detection
        // confirmed BMI2 on this CPU (see module docs).
        return unsafe { bmi2::insert_zero_u64(bits, pos) };
    }
    insert_zero_u64_portable(bits, pos)
}

/// Dispatched remove-the-bit at `pos` (`pos < 64`).
#[inline]
pub fn remove_bit_u64(bits: u64, pos: u32) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if Kernel::active().is_accelerated() {
        // SAFETY: `Kernel::Bmi2` is only cached after runtime detection
        // confirmed BMI2 on this CPU (see module docs).
        return unsafe { bmi2::remove_bit_u64(bits, pos) };
    }
    remove_bit_u64_portable(bits, pos)
}

/// Routed `rank`: like [`rank_u64`] but dispatched on the batch-resolved
/// bundle's tag (a register compare) instead of the cached atomic load.
/// Both arms inline fully.
#[inline]
pub fn rank_u64_routed(bits: u64, i: u32, ops: &KernelOps) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if ops.kernel().is_accelerated() {
        // SAFETY: an accelerated `KernelOps` is only constructible by
        // `KernelOps::accelerated()` after runtime detection (the tag
        // field is private), so BMI2 + POPCNT are present.
        return unsafe { bmi2::rank_u64(bits, i) };
    }
    rank_u64_portable(bits, i)
}

/// Routed `rank_range`; see [`rank_u64_routed`].
#[inline]
pub fn rank_range_u64_routed(bits: u64, a: u32, b: u32, ops: &KernelOps) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if ops.kernel().is_accelerated() {
        // SAFETY: accelerated bundles imply detection succeeded (see
        // `rank_u64_routed`).
        return unsafe { bmi2::rank_range_u64(bits, a, b) };
    }
    rank_range_u64_portable(bits, a, b)
}

/// Routed insert-a-zero; see [`rank_u64_routed`].
#[inline]
pub fn insert_zero_u64_routed(bits: u64, pos: u32, ops: &KernelOps) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if ops.kernel().is_accelerated() {
        // SAFETY: accelerated bundles imply detection succeeded (see
        // `rank_u64_routed`).
        return unsafe { bmi2::insert_zero_u64(bits, pos) };
    }
    insert_zero_u64_portable(bits, pos)
}

/// Routed remove-the-bit; see [`rank_u64_routed`].
#[inline]
pub fn remove_bit_u64_routed(bits: u64, pos: u32, ops: &KernelOps) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if ops.kernel().is_accelerated() {
        // SAFETY: accelerated bundles imply detection succeeded (see
        // `rank_u64_routed`).
        return unsafe { bmi2::remove_bit_u64(bits, pos) };
    }
    remove_bit_u64_portable(bits, pos)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(mut state: u64) -> impl FnMut() -> u64 {
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        }
    }

    #[test]
    fn mask_below_full_range() {
        assert_eq!(mask_below_u64(0), 0);
        assert_eq!(mask_below_u64(1), 1);
        assert_eq!(mask_below_u64(63), u64::MAX >> 1);
        assert_eq!(mask_below_u64(64), u64::MAX);
        assert_eq!(mask_below_u64(200), u64::MAX);
        for i in 0..=64u32 {
            assert_eq!(mask_below_u64(i).count_ones(), i.min(64));
        }
    }

    #[test]
    fn portable_primitives_match_naive() {
        let mut next = rng(0x9e37_79b9_7f4a_7c15);
        for _ in 0..500 {
            let bits = next();
            for i in 0..=64u32 {
                let naive = (0..i.min(64)).filter(|&j| (bits >> j) & 1 == 1).count() as u32;
                assert_eq!(rank_u64_portable(bits, i), naive, "rank({i})");
            }
            let a = (next() % 65) as u32;
            let b = a + (next() % (65 - u64::from(a))) as u32;
            assert_eq!(
                rank_range_u64_portable(bits, a, b),
                rank_u64_portable(bits, b) - rank_u64_portable(bits, a),
                "rank_range({a},{b})"
            );
        }
    }

    #[test]
    fn dispatched_matches_portable_for_all_primitives() {
        // On BMI2 hardware this exercises the accelerated kernels; on the
        // forced-portable leg it pins dispatch == portable. Either way the
        // dispatched result must be bit-identical to the baseline.
        let mut next = rng(0x2545_f491_4f6c_dd1d);
        for _ in 0..2_000 {
            let bits = next();
            let i = (next() % 66) as u32;
            assert_eq!(rank_u64(bits, i), rank_u64_portable(bits, i));
            let a = (next() % 65) as u32;
            let b = a + (next() % (65 - u64::from(a))) as u32;
            assert_eq!(
                rank_range_u64(bits, a, b),
                rank_range_u64_portable(bits, a, b)
            );
            let pos = (next() % 64) as u32;
            assert_eq!(
                insert_zero_u64(bits, pos),
                insert_zero_u64_portable(bits, pos)
            );
            assert_eq!(
                remove_bit_u64(bits, pos),
                remove_bit_u64_portable(bits, pos)
            );
        }
    }

    #[test]
    fn insert_remove_are_inverse_when_top_clear() {
        let mut next = rng(7);
        for _ in 0..200 {
            let bits = next() >> 1; // top bit clear: insert loses nothing
            let pos = (next() % 64) as u32;
            assert_eq!(remove_bit_u64(insert_zero_u64(bits, pos), pos), bits);
        }
    }

    #[test]
    fn batch_routing_never_selects_bmi2_for_queries() {
        let bk = Kernel::batch();
        assert_eq!(bk.query.kernel(), Kernel::Portable);
        // The update bundle follows the process-wide verdict.
        assert_eq!(bk.update.kernel(), Kernel::active());
        assert_eq!(KernelOps::portable().kernel(), Kernel::Portable);
    }

    #[test]
    fn batch_bundles_match_portable_for_all_primitives() {
        // Both bundles of one batch resolution, driven through the fn
        // pointers and the tag-routed dispatchers, must be bit-identical
        // to the portable baseline on both CI legs.
        let bk = Kernel::batch();
        let mut next = rng(0x0123_4567_89ab_cdef);
        for ops in [bk.query, bk.update] {
            for _ in 0..2_000 {
                let bits = next();
                let i = (next() % 66) as u32;
                assert_eq!((ops.rank)(bits, i), rank_u64_portable(bits, i));
                assert_eq!(rank_u64_routed(bits, i, &ops), rank_u64_portable(bits, i));
                let a = (next() % 65) as u32;
                let b = a + (next() % (65 - u64::from(a))) as u32;
                assert_eq!(
                    (ops.rank_range)(bits, a, b),
                    rank_range_u64_portable(bits, a, b)
                );
                assert_eq!(
                    rank_range_u64_routed(bits, a, b, &ops),
                    rank_range_u64_portable(bits, a, b)
                );
                let pos = (next() % 64) as u32;
                assert_eq!(
                    (ops.insert_zero)(bits, pos),
                    insert_zero_u64_portable(bits, pos)
                );
                assert_eq!(
                    insert_zero_u64_routed(bits, pos, &ops),
                    insert_zero_u64_portable(bits, pos)
                );
                assert_eq!(
                    (ops.remove_bit)(bits, pos),
                    remove_bit_u64_portable(bits, pos)
                );
                assert_eq!(
                    remove_bit_u64_routed(bits, pos, &ops),
                    remove_bit_u64_portable(bits, pos)
                );
            }
        }
    }

    #[test]
    fn detection_is_stable_and_named() {
        let first = Kernel::active();
        assert_eq!(Kernel::active(), first, "dispatch verdict must be cached");
        assert!(matches!(first.name(), "portable" | "bmi2"));
        assert!(!Kernel::cpu_features().is_empty());
    }
}
