//! Bit-level storage substrate for the MPCBF workspace.
//!
//! The paper's data structures are all bit-packed arrays with word-granular
//! access patterns:
//!
//! * the standard Bloom filter is an `m`-bit vector ([`BitVec`]);
//! * the standard CBF is a vector of `m` packed `c`-bit counters
//!   ([`CounterVec`], `c = 4` in the paper);
//! * PCBF/MPCBF partition their storage into machine words, and MPCBF's
//!   HCBF additionally performs *in-word bit insertion and removal with
//!   shifting* (§III.B.1: "insert a 0 at position popcount(e) of the next
//!   level … and shift right the bits at the positions larger than
//!   popcount(e)").
//!
//! The [`Word`] trait captures exactly the in-word operations HCBF needs —
//! bit test/set/clear, ranked popcounts, and shifting insert/remove — and is
//! implemented for `u16`/`u32`/`u64`/`u128` plus arbitrary-width
//! [`wide::WideWord`]s built from 64-bit limbs, so the harness can sweep the
//! paper's word sizes (w = 16…64 in the figures) and beyond (256/512-bit
//! cache-line words).
//!
//! The crate is safe Rust except for two tightly-scoped modules:
//! [`kernel`] (runtime-dispatched BMI2 intrinsics behind cached CPU-feature
//! detection) and [`aligned`] (cache-line-aligned allocation). Both carry
//! per-block safety comments and are covered by differential tests proving
//! them observably identical to the portable baseline; everything else
//! compiles to the obvious mask-and-shift instruction sequences.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aligned;
pub mod bitvec;
pub mod counters;
pub mod kernel;
pub mod wide;
pub mod word;

pub use crate::aligned::{advise_huge_slice, AlignedVec, CACHE_LINE_BYTES};
pub use crate::bitvec::BitVec;
pub use crate::counters::CounterVec;
pub use crate::kernel::{BatchKernel, Kernel, KernelOps};
pub use crate::wide::WideWord;
pub use crate::word::Word;

/// 256-bit word (four 64-bit limbs): a common cache-line-quarter size.
pub type W256 = WideWord<4>;
/// 512-bit word (eight 64-bit limbs): one full cache line.
pub type W512 = WideWord<8>;
