//! Packed `c`-bit saturating counters.
//!
//! The standard CBF (§II.A) replaces each membership bit with a `c`-bit
//! counter; the paper uses `c = 4` ("four bits per counter have been shown
//! to suffice for most applications"). [`CounterVec`] packs counters of any
//! width 1–32 bits contiguously, allowing counters to straddle 64-bit limb
//! boundaries, and implements the standard CBF overflow policy: a counter
//! that reaches its maximum *saturates* (sticks) rather than wrapping, so
//! membership is never lost — at the cost that a saturated counter can no
//! longer be decremented reliably (tracked via [`CounterVec::saturations`]).

/// A vector of packed `c`-bit saturating counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterVec {
    limbs: Vec<u64>,
    len: usize,
    width: u32,
    max: u64,
    saturations: u64,
}

impl CounterVec {
    /// Creates `len` zeroed counters of `width` bits each.
    ///
    /// # Panics
    /// Panics unless `1 <= width <= 32`.
    pub fn new(len: usize, width: u32) -> Self {
        assert!(
            (1..=32).contains(&width),
            "counter width {width} not in 1..=32"
        );
        let total_bits = len * width as usize;
        CounterVec {
            limbs: vec![0; total_bits.div_ceil(64)],
            len,
            width,
            max: (1u64 << width) - 1,
            saturations: 0,
        }
    }

    /// Number of counters.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no counters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Counter width in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Maximum representable counter value (`2^width − 1`).
    #[inline]
    pub fn max_value(&self) -> u64 {
        self.max
    }

    /// Number of increment attempts that hit a saturated counter.
    #[inline]
    pub fn saturations(&self) -> u64 {
        self.saturations
    }

    #[inline]
    fn bit_offset(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "counter index {i} out of range {}", self.len);
        i * self.width as usize
    }

    /// Reads counter `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        let off = self.bit_offset(i);
        let (limb, shift) = (off / 64, (off % 64) as u32);
        let lo = self.limbs[limb] >> shift;
        let val = if shift + self.width <= 64 {
            lo
        } else {
            lo | (self.limbs[limb + 1] << (64 - shift))
        };
        val & self.max
    }

    #[inline]
    fn put(&mut self, i: usize, value: u64) {
        debug_assert!(value <= self.max);
        let off = self.bit_offset(i);
        let (limb, shift) = (off / 64, (off % 64) as u32);
        self.limbs[limb] &= !(self.max << shift);
        self.limbs[limb] |= value << shift;
        if shift + self.width > 64 {
            let spill = 64 - shift;
            self.limbs[limb + 1] &= !(self.max >> spill);
            self.limbs[limb + 1] |= value >> spill;
        }
    }

    /// Increments counter `i`, saturating at the maximum.
    ///
    /// Returns the *new* value (the old maximum if saturated).
    #[inline]
    pub fn increment(&mut self, i: usize) -> u64 {
        let v = self.get(i);
        if v == self.max {
            self.saturations += 1;
            v
        } else {
            self.put(i, v + 1);
            v + 1
        }
    }

    /// Decrements counter `i`.
    ///
    /// A saturated counter is left untouched (the standard CBF policy:
    /// once a counter saturates its true value is unknown, so it must stay
    /// at maximum to preserve the no-false-negative guarantee). Returns the
    /// new value, or `None` if the counter was already zero (an attempt to
    /// delete an element that was never inserted).
    #[inline]
    pub fn decrement(&mut self, i: usize) -> Option<u64> {
        let v = self.get(i);
        match v {
            0 => None,
            v if v == self.max => Some(v),
            v => {
                self.put(i, v - 1);
                Some(v - 1)
            }
        }
    }

    /// True if counter `i` is nonzero.
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        self.get(i) != 0
    }

    /// Number of nonzero counters.
    pub fn count_nonzero(&self) -> usize {
        (0..self.len).filter(|&i| self.get(i) != 0).count()
    }

    /// Sum of all counter values.
    pub fn total(&self) -> u64 {
        (0..self.len).map(|i| self.get(i)).sum()
    }

    /// Resets every counter to zero and clears the saturation count.
    pub fn clear_all(&mut self) {
        self.limbs.fill(0);
        self.saturations = 0;
    }

    /// Memory used by the counter array, in bits (the paper's "memory
    /// consumption" axis: `m` counters × `c` bits).
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.len * self.width as usize
    }

    /// The raw 64-bit limbs backing the counters (for serialization).
    #[inline]
    pub fn raw_limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// XORs `mask` into limb `limb`, bypassing the counter accessors.
    ///
    /// This is a **fault-injection hook**: it simulates in-memory bit
    /// flips (cosmic rays, faulty DIMMs) for corruption-detection tests
    /// and deliberately may leave counters in states no sequence of
    /// increments/decrements can produce. Never call it in normal
    /// operation.
    ///
    /// # Panics
    /// Panics if `limb` is out of range.
    pub fn xor_limb(&mut self, limb: usize, mask: u64) {
        self.limbs[limb] ^= mask;
    }

    /// Reconstructs a counter vector from raw limbs (the inverse of
    /// [`CounterVec::raw_limbs`]), e.g. when decoding a wire format.
    ///
    /// # Panics
    /// Panics if the limb count does not match `len`/`width`, or if the
    /// width is out of range.
    pub fn from_raw_parts(limbs: Vec<u64>, len: usize, width: u32, saturations: u64) -> Self {
        assert!(
            (1..=32).contains(&width),
            "counter width {width} not in 1..=32"
        );
        let expect = (len * width as usize).div_ceil(64);
        assert_eq!(limbs.len(), expect, "limb count mismatch");
        CounterVec {
            limbs,
            len,
            width,
            max: (1u64 << width) - 1,
            saturations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_bit_counters_basic() {
        let mut c = CounterVec::new(100, 4);
        assert_eq!(c.get(7), 0);
        assert_eq!(c.increment(7), 1);
        assert_eq!(c.increment(7), 2);
        assert_eq!(c.get(7), 2);
        assert_eq!(c.decrement(7), Some(1));
        assert_eq!(c.decrement(7), Some(0));
        assert_eq!(c.decrement(7), None);
        assert_eq!(c.get(7), 0);
    }

    #[test]
    fn saturation_sticks() {
        let mut c = CounterVec::new(4, 2); // max = 3
        for _ in 0..3 {
            c.increment(1);
        }
        assert_eq!(c.get(1), 3);
        assert_eq!(c.increment(1), 3);
        assert_eq!(c.saturations(), 1);
        // A saturated counter refuses to decrement below max.
        assert_eq!(c.decrement(1), Some(3));
        assert_eq!(c.get(1), 3);
    }

    #[test]
    fn neighbours_are_independent() {
        let mut c = CounterVec::new(64, 4);
        c.increment(10);
        c.increment(10);
        c.increment(11);
        assert_eq!(c.get(9), 0);
        assert_eq!(c.get(10), 2);
        assert_eq!(c.get(11), 1);
        assert_eq!(c.get(12), 0);
    }

    #[test]
    fn straddling_widths_work() {
        // width 5: counters straddle limb boundaries (5 ∤ 64).
        let mut c = CounterVec::new(200, 5);
        for i in 0..200 {
            for _ in 0..(i % 31) {
                c.increment(i);
            }
        }
        for i in 0..200 {
            assert_eq!(c.get(i), (i % 31) as u64, "counter {i}");
        }
    }

    #[test]
    fn width_boundaries() {
        let mut c1 = CounterVec::new(10, 1);
        assert_eq!(c1.max_value(), 1);
        c1.increment(0);
        assert_eq!(c1.increment(0), 1); // saturates immediately
        let c32 = CounterVec::new(3, 32);
        assert_eq!(c32.max_value(), u32::MAX as u64);
    }

    #[test]
    fn totals_and_nonzero() {
        let mut c = CounterVec::new(8, 4);
        c.increment(0);
        c.increment(0);
        c.increment(5);
        assert_eq!(c.total(), 3);
        assert_eq!(c.count_nonzero(), 2);
        c.clear_all();
        assert_eq!(c.total(), 0);
        assert_eq!(c.count_nonzero(), 0);
    }

    #[test]
    fn memory_bits_matches_definition() {
        let c = CounterVec::new(1_000_000, 4);
        assert_eq!(c.memory_bits(), 4_000_000);
    }

    #[test]
    #[should_panic(expected = "not in 1..=32")]
    fn zero_width_panics() {
        let _ = CounterVec::new(1, 0);
    }

    #[test]
    fn xor_limb_flips_raw_bits() {
        let mut c = CounterVec::new(32, 4);
        c.increment(0); // counter 0 lives in bits 0..4 of limb 0
        assert_eq!(c.get(0), 1);
        c.xor_limb(0, 0b0010); // flip bit 1: counter becomes 3
        assert_eq!(c.get(0), 3);
        c.xor_limb(0, 0b0010); // flipping back restores the old value
        assert_eq!(c.get(0), 1);
        c.xor_limb(1, 1 << 63); // damage in limb 1 leaves limb 0 alone
        assert_eq!(c.get(0), 1);
        assert_ne!(c.get(31), 0);
    }

    #[test]
    fn last_counter_straddles_cleanly() {
        // 13 counters × 5 bits = 65 bits: last counter spans limbs.
        let mut c = CounterVec::new(13, 5);
        for _ in 0..31 {
            c.increment(12);
        }
        assert_eq!(c.get(12), 31);
        assert_eq!(c.get(11), 0);
    }
}
