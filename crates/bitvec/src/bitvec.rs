//! A plain fixed-length bit vector over 64-bit limbs.
//!
//! Backs the standard Bloom filter (§II.A) and the membership planes of the
//! d-left/VI variants. Exposes its raw limbs so word-partitioned filters
//! (BF-1) can fetch whole machine words and meter memory accesses.

/// A fixed-length bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    limbs: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zeros bit vector of `len` bits.
    pub fn new(len: usize) -> Self {
        BitVec {
            limbs: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to one. Returns the previous value.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let limb = &mut self.limbs[i / 64];
        let mask = 1u64 << (i % 64);
        let was = *limb & mask != 0;
        *limb |= mask;
        was
    }

    /// Clears bit `i` to zero. Returns the previous value.
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let limb = &mut self.limbs[i / 64];
        let mask = 1u64 << (i % 64);
        let was = *limb & mask != 0;
        *limb &= !mask;
        was
    }

    /// Number of one bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Fill ratio: ones / len (0.0 for an empty vector).
    #[inline]
    pub fn fill_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Resets every bit to zero, keeping the length.
    pub fn clear_all(&mut self) {
        self.limbs.fill(0);
    }

    /// The underlying 64-bit limbs (bit `i` lives in limb `i / 64`).
    #[inline]
    pub fn raw_limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Heap memory used, in bits (the figure the paper's "memory
    /// consumption" axis refers to: the vector itself).
    #[inline]
    pub fn memory_bits(&self) -> usize {
        self.limbs.len() * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_zero() {
        let v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.get(0) && !v.get(129));
    }

    #[test]
    fn set_clear_roundtrip() {
        let mut v = BitVec::new(100);
        assert!(!v.set(63));
        assert!(v.set(63)); // already set
        assert!(v.get(63));
        assert!(v.clear(63));
        assert!(!v.clear(63)); // already clear
        assert!(!v.get(63));
    }

    #[test]
    fn count_and_fill_ratio() {
        let mut v = BitVec::new(64);
        for i in 0..32 {
            v.set(i * 2);
        }
        assert_eq!(v.count_ones(), 32);
        assert!((v.fill_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_all_resets() {
        let mut v = BitVec::new(70);
        v.set(0);
        v.set(69);
        v.clear_all();
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn empty_vector() {
        let v = BitVec::new(0);
        assert!(v.is_empty());
        assert_eq!(v.fill_ratio(), 0.0);
        assert_eq!(v.memory_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let v = BitVec::new(10);
        let _ = v.get(10);
    }

    #[test]
    fn limbs_rounded_up() {
        let v = BitVec::new(65);
        assert_eq!(v.raw_limbs().len(), 2);
        assert_eq!(v.memory_bits(), 128);
    }
}
