//! Property tests for the bit substrate: counters against a `Vec<u64>`
//! oracle, word insert/remove against shift semantics, cross-width
//! equivalence.

use mpcbf_bitvec::{BitVec, CounterVec, WideWord, Word};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum CounterOp {
    Inc(usize),
    Dec(usize),
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn counters_match_oracle(
        width in 1u32..=16,
        ops in prop::collection::vec(
            prop_oneof![
                (0usize..50).prop_map(CounterOp::Inc),
                (0usize..50).prop_map(CounterOp::Dec),
            ],
            0..300,
        ),
    ) {
        let mut cv = CounterVec::new(50, width);
        let max = cv.max_value();
        let mut oracle = vec![0u64; 50];
        for op in &ops {
            match *op {
                CounterOp::Inc(i) => {
                    cv.increment(i);
                    if oracle[i] < max {
                        oracle[i] += 1;
                    }
                }
                CounterOp::Dec(i) => {
                    cv.decrement(i);
                    // Saturated counters stick; zero counters stay zero.
                    if oracle[i] > 0 && oracle[i] < max {
                        oracle[i] -= 1;
                    }
                }
            }
        }
        for (i, &expect) in oracle.iter().enumerate() {
            prop_assert_eq!(cv.get(i), expect, "counter {}", i);
        }
        prop_assert_eq!(cv.total(), oracle.iter().sum::<u64>());
    }

    #[test]
    fn bitvec_set_clear_matches_hashset(
        ops in prop::collection::vec((any::<bool>(), 0usize..200), 0..200)
    ) {
        let mut bv = BitVec::new(200);
        let mut oracle = std::collections::HashSet::new();
        for (set, i) in ops {
            if set {
                bv.set(i);
                oracle.insert(i);
            } else {
                bv.clear(i);
                oracle.remove(&i);
            }
        }
        for i in 0..200 {
            prop_assert_eq!(bv.get(i), oracle.contains(&i), "bit {}", i);
        }
        prop_assert_eq!(bv.count_ones(), oracle.len());
    }

    #[test]
    fn wideword2_tracks_u128(
        sets in prop::collection::vec(0u32..127, 0..40),
        insert_at in 0u32..127,
        remove_at in 0u32..127,
    ) {
        let mut wide = WideWord::<2>::zero();
        let mut narrow: u128 = 0;
        for &i in &sets {
            wide.set_bit(i);
            narrow.set_bit(i);
        }
        wide.insert_zero(insert_at);
        narrow.insert_zero(insert_at);
        wide.remove_bit(remove_at);
        narrow.remove_bit(remove_at);
        for i in 0..128 {
            prop_assert_eq!(wide.bit(i), narrow.bit(i), "bit {}", i);
        }
        for i in 0..=128u32 {
            prop_assert_eq!(wide.rank(i), narrow.rank(i), "rank {}", i);
        }
        prop_assert_eq!(wide.highest_set_bit(), narrow.highest_set_bit());
    }

    #[test]
    fn insert_then_remove_is_identity_when_top_clear(
        sets in prop::collection::vec(0u32..63, 0..30),
        pos in 0u32..63,
    ) {
        let mut w: u64 = 0;
        for &i in &sets {
            w.set_bit(i);
        }
        let before = w;
        w.insert_zero(pos);
        prop_assert!(!w.bit(pos));
        w.remove_bit(pos);
        prop_assert_eq!(w, before);
    }

    #[test]
    fn rank_counts_exactly(sets in prop::collection::vec(0u32..64, 0..40)) {
        let mut w: u64 = 0;
        for &i in &sets {
            w.set_bit(i);
        }
        for i in 0..=64u32 {
            let direct = (0..i).filter(|&j| w.bit(j)).count() as u32;
            prop_assert_eq!(w.rank(i), direct, "rank({})", i);
        }
    }

    #[test]
    fn mask_below_defines_rank_all_widths(sets in prop::collection::vec(0u32..512, 0..80)) {
        // Satellite pin: rank(i) == count_ones(bits & mask_below(i)) across
        // the full 0..=BITS range for every word type, including wide words.
        fn check<W: Word>(sets: &[u32]) {
            let mut w = W::zero();
            for &i in sets {
                w.set_bit(i % W::BITS);
            }
            for i in 0..=W::BITS {
                let mut masked = w;
                let keep = W::mask_below(i);
                for b in 0..W::BITS {
                    if !keep.bit(b) {
                        masked.clear_bit(b);
                    }
                }
                prop_assert_eq!(w.rank(i), masked.count_ones(), "rank({}) vs mask", i);
                prop_assert_eq!(w.rank_hot(i), w.rank(i), "rank_hot({})", i);
            }
            // Saturation beyond the width.
            prop_assert_eq!(W::mask_below(W::BITS + 7), W::mask_below(W::BITS));
        }
        check::<u16>(&sets);
        check::<u32>(&sets);
        check::<u64>(&sets);
        check::<u128>(&sets);
        check::<mpcbf_bitvec::W256>(&sets);
        check::<mpcbf_bitvec::W512>(&sets);
    }

    #[test]
    fn hot_tier_is_bit_identical_all_widths(
        sets in prop::collection::vec(0u32..512, 0..80),
        pos in 0u32..512,
        a in 0u32..512,
        b in 0u32..512,
    ) {
        // Dispatched (hot) primitives must match the portable baseline
        // bit-for-bit on every width, wherever the kernel dispatches.
        fn check<W: Word>(
            sets: &[u32],
            pos: u32,
            a: u32,
            b: u32,
        ) {
            let mut w = W::zero();
            for &i in sets {
                w.set_bit(i % W::BITS);
            }
            let pos = pos % W::BITS;
            let (a, b) = {
                let (a, b) = (a % (W::BITS + 1), b % (W::BITS + 1));
                if a <= b { (a, b) } else { (b, a) }
            };
            prop_assert_eq!(w.rank_range_hot(a, b), w.rank_range(a, b));
            let mut plain = w;
            let mut hot = w;
            plain.insert_zero(pos);
            hot.insert_zero_hot(pos);
            prop_assert_eq!(plain, hot, "insert_zero at {}", pos);
            plain.remove_bit(pos);
            hot.remove_bit_hot(pos);
            prop_assert_eq!(plain, hot, "remove_bit at {}", pos);
        }
        check::<u16>(&sets, pos, a, b);
        check::<u32>(&sets, pos, a, b);
        check::<u64>(&sets, pos, a, b);
        check::<u128>(&sets, pos, a, b);
        check::<mpcbf_bitvec::W256>(&sets, pos, a, b);
        check::<mpcbf_bitvec::W512>(&sets, pos, a, b);
    }

    #[test]
    fn counter_widths_straddle_safely(width in 1u32..=32, idx in 0usize..100) {
        // Write a value near max into one counter; neighbours unaffected.
        let mut cv = CounterVec::new(100, width);
        let target = cv.max_value().min(37);
        for _ in 0..target {
            cv.increment(idx);
        }
        prop_assert_eq!(cv.get(idx), target);
        for i in 0..100 {
            if i != idx {
                prop_assert_eq!(cv.get(i), 0, "neighbour {} dirtied", i);
            }
        }
    }
}
