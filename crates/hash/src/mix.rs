//! Integer mixing and range-reduction primitives.
//!
//! These are the small building blocks the filters use to turn one 128-bit
//! digest into word selectors and in-word indices without further passes
//! over the key bytes.

/// SplitMix64 finaliser (Steele, Lea & Flood; also Vigna's `splitmix64`).
///
/// A cheap, high-quality 64→64-bit bijective mixer. Used to derive extra
/// independent hash values from a digest when more hash bits are needed
/// than one digest provides (e.g. MPCBF-3 with large `k`).
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Lemire's fast range reduction: maps a uniform `x` in `[0, 2^64)` to a
/// uniform value in `[0, n)` using a multiply-high instead of a modulo.
///
/// This is what makes non-power-of-two word counts cheap; for power-of-two
/// ranges the filters use bit masks directly.
#[inline]
pub fn fast_range(x: u64, n: u64) -> u64 {
    (((x as u128) * (n as u128)) >> 64) as u64
}

/// Multiply–shift hashing: extracts a `bits`-wide value from `x` using a
/// fixed odd multiplier (Dietzfelbinger et al.). `bits` must be ≤ 64.
#[inline]
pub fn multiply_shift(x: u64, bits: u32) -> u64 {
    debug_assert!(bits <= 64);
    if bits == 0 {
        return 0;
    }
    let m = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    m >> (64 - bits)
}

/// Returns `ceil(log2(n))`, i.e. the number of hash bits needed to address
/// a range of `n` values. `n = 0` and `n = 1` both need zero bits.
#[inline]
pub fn bits_for(n: u64) -> u32 {
    if n <= 1 {
        0
    } else {
        64 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_bijective_on_sample() {
        // Distinct inputs must give distinct outputs (bijection ⇒ injective).
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn fast_range_bounds() {
        for n in [1u64, 2, 3, 7, 100, 1 << 20, u64::MAX] {
            for x in [0u64, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX] {
                assert!(fast_range(x, n) < n, "fast_range({x}, {n}) out of range");
            }
        }
    }

    #[test]
    fn fast_range_covers_small_ranges() {
        // Over a spread of inputs every bucket of a small range is hit.
        let n = 8u64;
        let mut hit = [false; 8];
        for i in 0..1000u64 {
            hit[fast_range(splitmix64(i), n) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn multiply_shift_width() {
        for bits in 1..=16u32 {
            for x in 0..500u64 {
                assert!(multiply_shift(splitmix64(x), bits) < (1 << bits));
            }
        }
        assert_eq!(multiply_shift(12345, 0), 0);
    }

    #[test]
    fn bits_for_known_values() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(64), 6);
        assert_eq!(bits_for(65), 7);
        assert_eq!(bits_for(1 << 20), 20);
    }
}
