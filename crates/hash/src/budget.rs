//! Hash-bit accounting ("access bandwidth" in the paper).
//!
//! The paper reports, for each filter and operation, the number of hash bits
//! the operation consumes — e.g. an MPCBF-1 query needs `log2(l)` bits to
//! select one of `l` words plus `k·log2(b1)` bits to address `k` positions
//! in the first-level sub-vector (§III.B.2). Tables I–III and Fig. 11b are
//! denominated in these units.
//!
//! [`BitBudget`] is a tiny ledger the instrumented filters feed while they
//! operate, so the harness reports *measured* bandwidth (including query
//! short-circuiting, which is what makes the paper's per-query averages
//! fractional) rather than only the closed-form worst case.

use crate::mix::bits_for;

/// Accumulates hash-bit consumption across operations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BitBudget {
    bits: u64,
    ops: u64,
}

impl BitBudget {
    /// A fresh, empty ledger.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges the bits needed to address a range of `n` values
    /// (`ceil(log2 n)`), `times` times.
    #[inline]
    pub fn charge_range(&mut self, n: u64, times: u64) {
        self.bits += u64::from(bits_for(n)) * times;
    }

    /// Charges an explicit number of bits.
    #[inline]
    pub fn charge_bits(&mut self, bits: u64) {
        self.bits += bits;
    }

    /// Marks the completion of one filter operation (query/insert/delete).
    #[inline]
    pub fn end_op(&mut self) {
        self.ops += 1;
    }

    /// Total bits charged so far.
    #[inline]
    pub fn total_bits(&self) -> u64 {
        self.bits
    }

    /// Number of completed operations.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Average bits per completed operation (0 if no operations).
    #[inline]
    pub fn bits_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.bits as f64 / self.ops as f64
        }
    }

    /// Merges another ledger into this one (used when workers run sharded).
    #[inline]
    pub fn merge(&mut self, other: &BitBudget) {
        self.bits += other.bits;
        self.ops += other.ops;
    }

    /// Resets the ledger to empty.
    #[inline]
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Closed-form worst-case bandwidth formulas from the paper, for checking the
/// measured ledgers against §III's analysis.
pub mod closed_form {
    use crate::mix::bits_for;

    /// CBF query/insert/delete bandwidth: `k · log2(m)` bits for a counter
    /// vector of `m` counters (§II.A with the paper's `m = l·w/4` layout).
    pub fn cbf(k: u32, m: u64) -> u64 {
        u64::from(k) * u64::from(bits_for(m))
    }

    /// PCBF-g bandwidth: `g·log2(l) + k·log2(w/4)` bits (§III.A.2); `g = 1`
    /// gives the PCBF-1 expression of §III.A.1.
    pub fn pcbf(g: u32, k: u32, l: u64, w: u32) -> u64 {
        u64::from(g) * u64::from(bits_for(l)) + u64::from(k) * u64::from(bits_for(u64::from(w / 4)))
    }

    /// MPCBF-g *query* bandwidth: `g·log2(l) + k·log2(b1)` bits (§III.C).
    pub fn mpcbf_query(g: u32, k: u32, l: u64, b1: u32) -> u64 {
        u64::from(g) * u64::from(bits_for(l)) + u64::from(k) * u64::from(bits_for(u64::from(b1)))
    }

    /// MPCBF-g *update* worst-case bandwidth: the query bits plus the
    /// popcount-traversal addressing of deeper levels,
    /// `k·(log2 b2 + … + log2 bd)` (§III.B.2). `levels` are the level sizes
    /// `b2..=bd` actually present.
    pub fn mpcbf_update(g: u32, k: u32, l: u64, b1: u32, levels: &[u32]) -> u64 {
        let deeper: u64 = levels
            .iter()
            .map(|&b| u64::from(bits_for(u64::from(b))))
            .sum();
        mpcbf_query(g, k, l, b1) + u64::from(k) * deeper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let mut b = BitBudget::new();
        b.charge_range(1 << 16, 1); // 16 bits: word select
        b.charge_range(64, 3); // 3 × 6 bits: in-word indices
        b.end_op();
        assert_eq!(b.total_bits(), 16 + 18);
        assert_eq!(b.ops(), 1);
        assert!((b.bits_per_op() - 34.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let b = BitBudget::new();
        assert_eq!(b.total_bits(), 0);
        assert_eq!(b.bits_per_op(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = BitBudget::new();
        a.charge_bits(10);
        a.end_op();
        let mut b = BitBudget::new();
        b.charge_bits(30);
        b.end_op();
        a.merge(&b);
        assert_eq!(a.total_bits(), 40);
        assert_eq!(a.ops(), 2);
        assert!((a.bits_per_op() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let mut a = BitBudget::new();
        a.charge_bits(5);
        a.end_op();
        a.reset();
        assert_eq!(a, BitBudget::new());
    }

    #[test]
    fn closed_form_examples_from_paper() {
        // §III.A.1 example: CBF with k=3, m=16 counters needs 3·log2(16)=12
        // bits; PCBF-1 with l=4, w=16 needs log2(4)+3·log2(4)=8 bits (Fig. 1).
        assert_eq!(closed_form::cbf(3, 16), 12);
        assert_eq!(closed_form::pcbf(1, 3, 4, 16), 8);
    }

    #[test]
    fn closed_form_mpcbf_update_adds_level_bits() {
        let q = closed_form::mpcbf_query(1, 3, 1 << 16, 43);
        let u = closed_form::mpcbf_update(1, 3, 1 << 16, 43, &[12, 6]);
        assert!(u > q);
        assert_eq!(u - q, 3 * (4 + 3)); // log2(12)→4 bits, log2(6)→3 bits
    }
}
