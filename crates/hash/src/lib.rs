//! Hash substrate for the MPCBF workspace.
//!
//! Every filter in the paper ("A Multi-Partitioning Approach to Building Fast
//! and Accurate Counting Bloom Filters", IPDPS 2013) is parameterised by a
//! family of hash functions, and two of the paper's three performance metrics
//! depend on how hashing is performed:
//!
//! * **processing overhead** counts memory accesses, which depends on how an
//!   element is mapped to words and to positions inside a word;
//! * **access bandwidth** counts the number of *hash bits* consumed per
//!   operation (e.g. `log2(l) + k*log2(b1)` bits for an MPCBF-1 query).
//!
//! This crate provides, implemented from scratch:
//!
//! * [`murmur3::murmur3_x64_128`] — the default 128-bit digest function;
//! * [`xxhash::xxh64`] — a fast 64-bit alternative;
//! * [`fnv::fnv1a64`] — a simple baseline hash;
//! * [`mix`] — `splitmix64`, multiply–shift, and fast range reduction;
//! * [`double::DoubleHasher`] — Kirsch–Mitzenmacher double hashing, which
//!   derives the `k` per-word indices from one 128-bit digest (the trick the
//!   paper's reference \[22\] proves loses nothing in false-positive rate);
//! * [`budget::BitBudget`] — the hash-bit accounting used to report the
//!   paper's access-bandwidth numbers (Tables I–III, Fig. 11b);
//! * [`key::Key`] — zero-allocation conversion of common key types
//!   (strings, integers, flow 2-tuples) into hashable bytes.
//!
//! The [`Hasher128`] trait is the seam between filters and hash functions;
//! all filters default to [`Murmur3`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod double;
pub mod fnv;
pub mod key;
pub mod mix;
pub mod murmur3;
pub mod siphash;
pub mod xxhash;

pub use budget::BitBudget;
pub use double::DoubleHasher;
pub use key::{Key, KeyBytes};

/// A 128-bit keyed hash function: the digest source for all filters.
///
/// Implementations must be deterministic functions of `(seed, data)` and
/// should behave like a random oracle for the purposes of Bloom-filter
/// analysis. The two 64-bit halves of the digest are treated as independent
/// hash values by [`DoubleHasher`].
pub trait Hasher128: Clone + Send + Sync + 'static {
    /// Hashes `data` under `seed`, returning a 128-bit digest.
    fn hash128(seed: u64, data: &[u8]) -> u128;

    /// Hashes `data` under `seed`, returning the low 64 bits of the digest.
    #[inline]
    fn hash64(seed: u64, data: &[u8]) -> u64 {
        Self::hash128(seed, data) as u64
    }
}

/// MurmurHash3 x64 128-bit ([`murmur3`]); the workspace default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Murmur3;

impl Hasher128 for Murmur3 {
    #[inline]
    fn hash128(seed: u64, data: &[u8]) -> u128 {
        // Murmur3's reference implementation takes a 32-bit seed; fold the
        // 64-bit seed so both halves contribute.
        let folded = (seed ^ (seed >> 32)) as u32;
        murmur3::murmur3_x64_128(data, folded)
    }
}

/// xxHash64 expanded to 128 bits by hashing under two derived seeds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XxHash;

impl Hasher128 for XxHash {
    #[inline]
    fn hash128(seed: u64, data: &[u8]) -> u128 {
        let lo = xxhash::xxh64(data, seed);
        let hi = xxhash::xxh64(data, seed ^ mix::splitmix64(seed ^ 0x9e37_79b9_7f4a_7c15));
        ((hi as u128) << 64) | lo as u128
    }

    #[inline]
    fn hash64(seed: u64, data: &[u8]) -> u64 {
        xxhash::xxh64(data, seed)
    }
}

/// SipHash-2-4 expanded to 128 bits by hashing under two derived keys.
///
/// The keyed, HashDoS-resistant family: use when filter keys may be
/// adversarial (the seed acts as the secret key).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SipHash;

impl Hasher128 for SipHash {
    #[inline]
    fn hash128(seed: u64, data: &[u8]) -> u128 {
        let k1 = mix::splitmix64(seed);
        let lo = siphash::siphash24(seed, k1, data);
        let hi = siphash::siphash24(seed ^ 0x5349_5048_4153_4821, k1, data);
        ((hi as u128) << 64) | lo as u128
    }

    #[inline]
    fn hash64(seed: u64, data: &[u8]) -> u64 {
        siphash::siphash24(seed, mix::splitmix64(seed), data)
    }
}

/// FNV-1a expanded to 128 bits via splitmix finalisation.
///
/// Weakest of the three families; provided as a baseline to show (in the
/// ablation benches) that MPCBF's accuracy claims do not hinge on a
/// particularly strong hash.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fnv;

impl Hasher128 for Fnv {
    #[inline]
    fn hash128(seed: u64, data: &[u8]) -> u128 {
        let h = fnv::fnv1a64_seeded(data, seed);
        let lo = mix::splitmix64(h);
        let hi = mix::splitmix64(h ^ 0xa076_1d64_78bd_642f);
        ((hi as u128) << 64) | lo as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashers_are_deterministic() {
        let data = b"mpcbf determinism";
        assert_eq!(Murmur3::hash128(7, data), Murmur3::hash128(7, data));
        assert_eq!(XxHash::hash128(7, data), XxHash::hash128(7, data));
        assert_eq!(Fnv::hash128(7, data), Fnv::hash128(7, data));
    }

    #[test]
    fn hashers_depend_on_seed() {
        let data = b"mpcbf seed sensitivity";
        assert_ne!(Murmur3::hash128(1, data), Murmur3::hash128(2, data));
        assert_ne!(XxHash::hash128(1, data), XxHash::hash128(2, data));
        assert_ne!(Fnv::hash128(1, data), Fnv::hash128(2, data));
    }

    #[test]
    fn hashers_depend_on_data() {
        assert_ne!(Murmur3::hash128(0, b"a"), Murmur3::hash128(0, b"b"));
        assert_ne!(XxHash::hash128(0, b"a"), XxHash::hash128(0, b"b"));
        assert_ne!(Fnv::hash128(0, b"a"), Fnv::hash128(0, b"b"));
    }

    #[test]
    fn hash64_is_low_half_for_murmur() {
        let d = Murmur3::hash128(3, b"halves");
        assert_eq!(Murmur3::hash64(3, b"halves"), d as u64);
    }
}
