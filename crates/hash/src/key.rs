//! Zero-allocation key encoding.
//!
//! Filters hash byte strings. Workloads, however, produce 5-byte synthetic
//! strings, IPv4 flow 2-tuples, patent ids, etc. The [`Key`] trait converts
//! each into bytes without heap allocation: borrowed slices pass through,
//! small scalar keys are encoded into an inline buffer.

/// Bytes of a key: either borrowed from the caller or inlined on the stack.
#[derive(Debug, Clone, Copy)]
pub enum KeyBytes<'a> {
    /// A borrowed byte slice (strings, slices).
    Borrowed(&'a [u8]),
    /// Up to 16 bytes encoded inline (integers, tuples).
    Inline([u8; 16], u8),
}

impl<'a> KeyBytes<'a> {
    /// The encoded bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match self {
            KeyBytes::Borrowed(s) => s,
            KeyBytes::Inline(buf, len) => &buf[..*len as usize],
        }
    }
}

impl AsRef<[u8]> for KeyBytes<'_> {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Anything usable as a filter key.
pub trait Key {
    /// Encodes the key as bytes, borrowing where possible.
    fn key_bytes(&self) -> KeyBytes<'_>;
}

impl Key for [u8] {
    #[inline]
    fn key_bytes(&self) -> KeyBytes<'_> {
        KeyBytes::Borrowed(self)
    }
}

impl Key for &[u8] {
    #[inline]
    fn key_bytes(&self) -> KeyBytes<'_> {
        KeyBytes::Borrowed(self)
    }
}

impl<const N: usize> Key for [u8; N] {
    #[inline]
    fn key_bytes(&self) -> KeyBytes<'_> {
        KeyBytes::Borrowed(self)
    }
}

impl Key for str {
    #[inline]
    fn key_bytes(&self) -> KeyBytes<'_> {
        KeyBytes::Borrowed(self.as_bytes())
    }
}

impl Key for &str {
    #[inline]
    fn key_bytes(&self) -> KeyBytes<'_> {
        KeyBytes::Borrowed(self.as_bytes())
    }
}

impl Key for String {
    #[inline]
    fn key_bytes(&self) -> KeyBytes<'_> {
        KeyBytes::Borrowed(self.as_bytes())
    }
}

impl Key for Vec<u8> {
    #[inline]
    fn key_bytes(&self) -> KeyBytes<'_> {
        KeyBytes::Borrowed(self)
    }
}

macro_rules! int_key {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl Key for $t {
            #[inline]
            fn key_bytes(&self) -> KeyBytes<'_> {
                let mut buf = [0u8; 16];
                buf[..$n].copy_from_slice(&self.to_le_bytes());
                KeyBytes::Inline(buf, $n)
            }
        })*
    };
}

int_key!(u8 => 1, u16 => 2, u32 => 4, u64 => 8, u128 => 16, i32 => 4, i64 => 8);

/// A flow 2-tuple `(source IP, destination IP)` — the paper's trace key
/// (§IV.A: "a flow being defined by the 2-tuple of source IP address and
/// destination IP address").
impl Key for (u32, u32) {
    #[inline]
    fn key_bytes(&self) -> KeyBytes<'_> {
        let mut buf = [0u8; 16];
        buf[..4].copy_from_slice(&self.0.to_le_bytes());
        buf[4..8].copy_from_slice(&self.1.to_le_bytes());
        KeyBytes::Inline(buf, 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn str_and_bytes_agree() {
        assert_eq!("abc".key_bytes().as_slice(), b"abc".key_bytes().as_slice());
        assert_eq!(String::from("abc").key_bytes().as_slice(), b"abc");
    }

    #[test]
    fn ints_are_little_endian() {
        assert_eq!(0x01020304u32.key_bytes().as_slice(), &[4, 3, 2, 1]);
        assert_eq!(1u8.key_bytes().as_slice(), &[1]);
        assert_eq!(0u64.key_bytes().as_slice(), &[0; 8]);
    }

    #[test]
    fn tuple_concatenates_both_halves() {
        let k = (0xAABBCCDDu32, 0x11223344u32);
        assert_eq!(
            k.key_bytes().as_slice(),
            &[0xDD, 0xCC, 0xBB, 0xAA, 0x44, 0x33, 0x22, 0x11]
        );
    }

    #[test]
    fn distinct_tuples_encode_distinctly() {
        assert_ne!(
            (1u32, 2u32).key_bytes().as_slice(),
            (2u32, 1u32).key_bytes().as_slice()
        );
    }

    #[test]
    fn u128_uses_all_sixteen_bytes() {
        let k = u128::MAX;
        assert_eq!(k.key_bytes().as_slice(), &[0xFF; 16]);
    }
}
