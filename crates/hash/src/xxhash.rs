//! xxHash64, implemented from the public specification (Yann Collet,
//! `xxhash_spec.md`).
//!
//! Used by the harness as the "fast 64-bit" alternative hash family; the
//! ablation benches compare filter accuracy and speed under Murmur3, xxHash
//! and FNV to show the paper's results are hash-family-insensitive.

const P1: u64 = 0x9e37_79b1_85eb_ca87;
const P2: u64 = 0xc2b2_ae3d_27d4_eb4f;
const P3: u64 = 0x1656_67b1_9e37_79f9;
const P4: u64 = 0x85eb_ca77_c2b2_ae63;
const P5: u64 = 0x27d4_eb2f_1656_67c5;

#[inline(always)]
fn round(acc: u64, lane: u64) -> u64 {
    acc.wrapping_add(lane.wrapping_mul(P2))
        .rotate_left(31)
        .wrapping_mul(P1)
}

#[inline(always)]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val)).wrapping_mul(P1).wrapping_add(P4)
}

#[inline(always)]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(P2);
    h ^= h >> 29;
    h = h.wrapping_mul(P3);
    h ^= h >> 32;
    h
}

#[inline(always)]
fn load_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8-byte slice"))
}

#[inline(always)]
fn load_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().expect("4-byte slice"))
}

/// Computes the xxHash64 digest of `data` under `seed`.
///
/// ```
/// use mpcbf_hash::xxhash::xxh64;
/// // Known-answer vectors from the xxHash specification.
/// assert_eq!(xxh64(b"", 0), 0xef46_db37_51d8_e999);
/// ```
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut rest = data;

    let mut h64: u64 = if len >= 32 {
        let mut v1 = seed.wrapping_add(P1).wrapping_add(P2);
        let mut v2 = seed.wrapping_add(P2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(P1);

        let mut stripes = rest.chunks_exact(32);
        for stripe in stripes.by_ref() {
            v1 = round(v1, load_u64(&stripe[0..8]));
            v2 = round(v2, load_u64(&stripe[8..16]));
            v3 = round(v3, load_u64(&stripe[16..24]));
            v4 = round(v4, load_u64(&stripe[24..32]));
        }
        rest = stripes.remainder();

        let mut acc = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        acc = merge_round(acc, v1);
        acc = merge_round(acc, v2);
        acc = merge_round(acc, v3);
        merge_round(acc, v4)
    } else {
        seed.wrapping_add(P5)
    };

    h64 = h64.wrapping_add(len as u64);

    let mut words = rest.chunks_exact(8);
    for w in words.by_ref() {
        h64 ^= round(0, load_u64(w));
        h64 = h64.rotate_left(27).wrapping_mul(P1).wrapping_add(P4);
    }
    rest = words.remainder();

    if rest.len() >= 4 {
        h64 ^= (load_u32(&rest[0..4]) as u64).wrapping_mul(P1);
        h64 = h64.rotate_left(23).wrapping_mul(P2).wrapping_add(P3);
        rest = &rest[4..];
    }

    for &b in rest {
        h64 ^= (b as u64).wrapping_mul(P5);
        h64 = h64.rotate_left(11).wrapping_mul(P1);
    }

    avalanche(h64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_empty() {
        assert_eq!(xxh64(b"", 0), 0xef46_db37_51d8_e999);
    }

    #[test]
    fn seed_and_data_sensitivity() {
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abc", 1));
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abd", 0));
    }

    #[test]
    fn all_path_lengths_distinct() {
        // Hit the <32, >=32, 8-byte, 4-byte and byte tail paths.
        let base: Vec<u8> = (0u8..80).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=base.len() {
            assert!(seen.insert(xxh64(&base[..len], 99)), "len {len} collided");
        }
    }

    #[test]
    fn avalanche_quality() {
        let input = *b"xxhash-avalanche-test-vector-01!"; // 32 bytes: long path
        let h0 = xxh64(&input, 0);
        let mut total = 0u32;
        let mut cases = 0u32;
        for byte in 0..input.len() {
            for bit in 0..8 {
                let mut m = input;
                m[byte] ^= 1 << bit;
                total += (xxh64(&m, 0) ^ h0).count_ones();
                cases += 1;
            }
        }
        let avg = total as f64 / cases as f64;
        assert!((19.2..44.8).contains(&avg), "avg flipped bits = {avg}");
    }

    #[test]
    fn uniformity_over_buckets() {
        const N: usize = 40_000;
        const BUCKETS: usize = 64;
        let mut counts = [0u32; BUCKETS];
        for i in 0..N {
            counts[(xxh64(&(i as u64).to_le_bytes(), 3) as usize) % BUCKETS] += 1;
        }
        let mean = (N / BUCKETS) as f64;
        for &c in &counts {
            assert!((c as f64 - mean).abs() / mean < 0.25);
        }
    }
}
