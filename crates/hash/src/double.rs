//! Kirsch–Mitzenmacher double hashing.
//!
//! The paper's reference \[22\] ("Less hashing, same performance") shows that
//! deriving the `k` Bloom indices as `g_i(x) = h1(x) + i·h2(x) (mod range)`
//! from two independent hash values preserves the asymptotic false-positive
//! rate. All filters in this workspace use this scheme: one 128-bit digest
//! per element yields `h1` and `h2`, and [`DoubleHasher`] streams out as
//! many indices as requested.
//!
//! This matters for the paper's speed story: MPCBF-1 genuinely computes
//! *one* hash per operation, so its "one memory access" claim is not hiding
//! `k` hash computations (§IV.B observes the software bottleneck is hash
//! computation; double hashing removes it for every variant equally).

use crate::mix::{fast_range, splitmix64};

/// Streams an unbounded sequence of indices in `[0, range)` derived from a
/// single 128-bit digest by double hashing.
#[derive(Debug, Clone)]
pub struct DoubleHasher {
    h1: u64,
    h2: u64,
    i: u64,
    range: u64,
}

impl DoubleHasher {
    /// Creates an index stream over `[0, range)` from a digest.
    ///
    /// `h2` is forced odd so that for power-of-two ranges the stride is
    /// coprime with the range and the probe sequence does not degenerate.
    ///
    /// # Panics
    /// Panics if `range == 0`.
    #[inline]
    pub fn new(digest: u128, range: u64) -> Self {
        assert!(range > 0, "index range must be non-empty");
        DoubleHasher {
            h1: digest as u64,
            h2: ((digest >> 64) as u64) | 1,
            i: 0,
            range,
        }
    }

    /// Creates a stream whose `h1`/`h2` are remixed with `salt`, yielding an
    /// index sequence independent of the unsalted one. Used when a filter
    /// needs several independent *groups* of indices from one digest (e.g.
    /// MPCBF-g's per-word index groups).
    #[inline]
    pub fn with_salt(digest: u128, salt: u64, range: u64) -> Self {
        let h1 = splitmix64((digest as u64) ^ salt);
        let h2 = splitmix64(
            ((digest >> 64) as u64)
                .wrapping_add(salt)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        Self::new(((h2 as u128) << 64) | h1 as u128, range)
    }

    /// The range this stream draws indices from.
    #[inline]
    pub fn range(&self) -> u64 {
        self.range
    }

    /// Returns the next index in `[0, range)`.
    #[inline]
    pub fn next_index(&mut self) -> usize {
        let v = self.h1.wrapping_add(self.i.wrapping_mul(self.h2));
        self.i += 1;
        // Remix before range reduction so that consecutive probe values are
        // spread over the whole 64-bit space even for tiny strides.
        fast_range(splitmix64(v), self.range) as usize
    }

    /// Fills `out` with the next `out.len()` indices.
    #[inline]
    pub fn fill(&mut self, out: &mut [usize]) {
        for slot in out.iter_mut() {
            *slot = self.next_index();
        }
    }
}

impl Iterator for DoubleHasher {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        Some(self.next_index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hasher128, Murmur3};

    fn digest(s: &[u8]) -> u128 {
        Murmur3::hash128(0, s)
    }

    #[test]
    fn indices_in_range() {
        for range in [1u64, 2, 3, 64, 61, 1024, 1_000_003] {
            let mut dh = DoubleHasher::new(digest(b"range test"), range);
            for _ in 0..200 {
                assert!((dh.next_index() as u64) < range);
            }
        }
    }

    #[test]
    fn deterministic_for_same_digest() {
        let a: Vec<usize> = DoubleHasher::new(digest(b"k"), 977).take(16).collect();
        let b: Vec<usize> = DoubleHasher::new(digest(b"k"), 977).take(16).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn salt_decorrelates_streams() {
        let a: Vec<usize> = DoubleHasher::with_salt(digest(b"k"), 1, 1 << 20)
            .take(8)
            .collect();
        let b: Vec<usize> = DoubleHasher::with_salt(digest(b"k"), 2, 1 << 20)
            .take(8)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn fill_matches_iteration() {
        let mut dh1 = DoubleHasher::new(digest(b"fill"), 4096);
        let mut buf = [0usize; 10];
        dh1.fill(&mut buf);
        let seq: Vec<usize> = DoubleHasher::new(digest(b"fill"), 4096).take(10).collect();
        assert_eq!(buf.to_vec(), seq);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // 10k keys × 3 indices into 64 buckets.
        let mut counts = [0u32; 64];
        for key in 0..10_000u64 {
            let mut dh = DoubleHasher::new(digest(&key.to_le_bytes()), 64);
            for _ in 0..3 {
                counts[dh.next_index()] += 1;
            }
        }
        let mean = (10_000 * 3 / 64) as f64;
        for &c in &counts {
            assert!(
                (c as f64 - mean).abs() / mean < 0.25,
                "count {c} vs mean {mean}"
            );
        }
    }

    #[test]
    fn degenerate_range_one_always_zero() {
        let mut dh = DoubleHasher::new(digest(b"one"), 1);
        for _ in 0..10 {
            assert_eq!(dh.next_index(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_range_panics() {
        let _ = DoubleHasher::new(0, 0);
    }
}
