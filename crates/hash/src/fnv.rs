//! FNV-1a (64-bit), the classic byte-at-a-time hash.
//!
//! Intentionally simple and of moderate quality; the workspace uses it only
//! as a baseline hash family in ablations and as the inner mix for cheap
//! auxiliary hashing (e.g. deriving shard ids in the MapReduce engine).

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Computes the FNV-1a 64-bit hash of `data`.
///
/// ```
/// use mpcbf_hash::fnv::{fnv1a64, FNV_OFFSET};
/// assert_eq!(fnv1a64(b""), FNV_OFFSET);
/// ```
#[inline]
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a with the seed folded into the initial state.
///
/// Plain FNV has no seed; we mix the seed into the offset basis so distinct
/// filter instances see independent functions.
#[inline]
pub fn fnv1a64_seeded(data: &[u8], seed: u64) -> u64 {
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME);
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answers() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn seeded_differs_from_unseeded() {
        assert_ne!(fnv1a64_seeded(b"abc", 1), fnv1a64(b"abc"));
        assert!(fnv1a64_seeded(b"abc", 0) == fnv1a64(b"abc"));
    }

    #[test]
    fn seed_sensitivity() {
        assert_ne!(fnv1a64_seeded(b"abc", 1), fnv1a64_seeded(b"abc", 2));
    }
}
