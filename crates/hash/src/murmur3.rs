//! MurmurHash3 x64 128-bit, implemented from the public-domain reference
//! (Austin Appleby, `MurmurHash3.cpp`).
//!
//! This is the default digest function of the workspace: one 128-bit digest
//! per element supplies the word selector and, through double hashing, all
//! `k` in-word indices, which is what lets MPCBF-1 claim a *single* hash
//! computation plus a single memory access per query.

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

#[inline(always)]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

#[inline(always)]
fn mix_k1(mut k1: u64) -> u64 {
    k1 = k1.wrapping_mul(C1);
    k1 = k1.rotate_left(31);
    k1.wrapping_mul(C2)
}

#[inline(always)]
fn mix_k2(mut k2: u64) -> u64 {
    k2 = k2.wrapping_mul(C2);
    k2 = k2.rotate_left(33);
    k2.wrapping_mul(C1)
}

#[inline(always)]
fn load_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8-byte slice"))
}

/// Computes the 128-bit MurmurHash3 (x64 variant) of `data` under `seed`.
///
/// The low 64 bits of the returned value are `h1`, the high 64 bits `h2`,
/// matching the output order of the reference implementation.
///
/// ```
/// use mpcbf_hash::murmur3::murmur3_x64_128;
/// // The reference implementation maps the empty input under seed 0 to 0.
/// assert_eq!(murmur3_x64_128(b"", 0), 0);
/// assert_ne!(murmur3_x64_128(b"x", 0), murmur3_x64_128(b"y", 0));
/// ```
pub fn murmur3_x64_128(data: &[u8], seed: u32) -> u128 {
    let len = data.len();
    let mut h1 = seed as u64;
    let mut h2 = seed as u64;

    let mut chunks = data.chunks_exact(16);
    for block in chunks.by_ref() {
        let k1 = load_u64(&block[0..8]);
        let k2 = load_u64(&block[8..16]);

        h1 ^= mix_k1(k1);
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_ca38);

        h2 ^= mix_k2(k2);
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut k1: u64 = 0;
        let mut k2: u64 = 0;
        for (i, &b) in tail.iter().enumerate() {
            if i < 8 {
                k1 |= (b as u64) << (8 * i);
            } else {
                k2 |= (b as u64) << (8 * (i - 8));
            }
        }
        if tail.len() > 8 {
            h2 ^= mix_k2(k2);
        }
        h1 ^= mix_k1(k1);
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);

    ((h2 as u128) << 64) | h1 as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_seed0_is_zero() {
        // With seed 0 both accumulators stay 0 through finalisation.
        assert_eq!(murmur3_x64_128(b"", 0), 0);
    }

    #[test]
    fn seed_changes_digest() {
        assert_ne!(murmur3_x64_128(b"abc", 0), murmur3_x64_128(b"abc", 1));
    }

    #[test]
    fn all_block_boundary_lengths_differ() {
        // Exercise the tail switch for every residue class mod 16, twice.
        let base: Vec<u8> = (0u8..64).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=base.len() {
            assert!(seen.insert(murmur3_x64_128(&base[..len], 42)));
        }
    }

    #[test]
    fn single_bit_flips_avalanche() {
        // Flipping any single input bit should change roughly half of the
        // 128 output bits. Loosely check 30%..70% averaged over positions.
        let input = *b"avalanche-check-0123";
        let h0 = murmur3_x64_128(&input, 0);
        let mut total = 0u32;
        let mut cases = 0u32;
        for byte in 0..input.len() {
            for bit in 0..8 {
                let mut m = input;
                m[byte] ^= 1 << bit;
                total += (murmur3_x64_128(&m, 0) ^ h0).count_ones();
                cases += 1;
            }
        }
        let avg = total as f64 / cases as f64;
        assert!((38.4..89.6).contains(&avg), "avg flipped bits = {avg}");
    }

    #[test]
    fn low_bits_look_uniform() {
        // Bucket 40k consecutive integers into 64 buckets via the digest's
        // low bits; each bucket should be within 25% of the mean.
        const N: usize = 40_000;
        const BUCKETS: usize = 64;
        let mut counts = [0u32; BUCKETS];
        for i in 0..N {
            let d = murmur3_x64_128(&(i as u64).to_le_bytes(), 7);
            counts[(d as usize) % BUCKETS] += 1;
        }
        let mean = (N / BUCKETS) as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - mean).abs() / mean;
            assert!(dev < 0.25, "bucket {b}: count {c}, dev {dev}");
        }
    }
}
