//! SipHash-2-4, implemented from the reference specification
//! (Aumasson & Bernstein, "SipHash: a fast short-input PRF").
//!
//! Provided as the *keyed* (HashDoS-resistant) family: a filter exposed to
//! adversarial keys (e.g. a router classifying attacker-chosen flows)
//! can be driven into worst-case false-positive clustering if its hash is
//! predictable; SipHash with a secret key closes that avenue at roughly
//! Murmur3-class speed for the short keys filters see.

/// One SipRound over the four lanes.
#[inline(always)]
fn sip_round(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Computes SipHash-2-4 of `data` under the 128-bit key `(k0, k1)`.
pub fn siphash24(k0: u64, k1: u64, data: &[u8]) -> u64 {
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
        v[3] ^= m;
        sip_round(&mut v);
        sip_round(&mut v);
        v[0] ^= m;
    }

    // Final block: remaining bytes plus the length in the top byte.
    let tail = chunks.remainder();
    let mut b = (data.len() as u64) << 56;
    for (i, &byte) in tail.iter().enumerate() {
        b |= u64::from(byte) << (8 * i);
    }
    v[3] ^= b;
    sip_round(&mut v);
    sip_round(&mut v);
    v[0] ^= b;

    v[2] ^= 0xff;
    for _ in 0..4 {
        sip_round(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference key from the SipHash paper's test-vector appendix:
    /// `k = 00 01 02 ... 0f`.
    const K0: u64 = 0x0706_0504_0302_0100;
    const K1: u64 = 0x0f0e_0d0c_0b0a_0908;

    #[test]
    fn reference_vectors() {
        // First entries of the official `vectors` table: input is the
        // byte string 00, 00 01, 00 01 02, ... under the reference key.
        let expected: [(usize, u64); 4] = [
            (0, 0x726f_db47_dd0e_0e31),
            (1, 0x74f8_39c5_93dc_67fd),
            (2, 0x0d6c_8009_d9a9_4f5a),
            (3, 0x8567_6696_d7fb_7e2d),
        ];
        for (len, want) in expected {
            let input: Vec<u8> = (0..len as u8).collect();
            assert_eq!(siphash24(K0, K1, &input), want, "len {len}");
        }
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(siphash24(1, 2, b"abc"), siphash24(1, 3, b"abc"));
        assert_ne!(siphash24(1, 2, b"abc"), siphash24(2, 2, b"abc"));
    }

    #[test]
    fn all_tail_lengths_distinct() {
        let base: Vec<u8> = (0..40).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=base.len() {
            assert!(seen.insert(siphash24(K0, K1, &base[..len])));
        }
    }

    #[test]
    fn uniformity_over_buckets() {
        const N: usize = 40_000;
        const BUCKETS: usize = 64;
        let mut counts = [0u32; BUCKETS];
        for i in 0..N {
            counts[(siphash24(7, 9, &(i as u64).to_le_bytes()) as usize) % BUCKETS] += 1;
        }
        let mean = (N / BUCKETS) as f64;
        for &c in &counts {
            assert!((c as f64 - mean).abs() / mean < 0.25);
        }
    }
}
