//! Property tests for the hash substrate.

use mpcbf_hash::mix::{bits_for, fast_range, multiply_shift, splitmix64};
use mpcbf_hash::{DoubleHasher, Fnv, Hasher128, Key, Murmur3, XxHash};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn digests_are_pure_functions(data in prop::collection::vec(any::<u8>(), 0..200), seed in any::<u64>()) {
        prop_assert_eq!(Murmur3::hash128(seed, &data), Murmur3::hash128(seed, &data));
        prop_assert_eq!(XxHash::hash128(seed, &data), XxHash::hash128(seed, &data));
        prop_assert_eq!(Fnv::hash128(seed, &data), Fnv::hash128(seed, &data));
    }

    #[test]
    fn append_changes_digest(data in prop::collection::vec(any::<u8>(), 0..64), extra in any::<u8>()) {
        let mut longer = data.clone();
        longer.push(extra);
        // Length is mixed into the finalisation, so extending must change
        // the digest (for these families, with overwhelming probability —
        // a violation here means a structural bug, not bad luck).
        prop_assert_ne!(Murmur3::hash128(0, &data), Murmur3::hash128(0, &longer));
        prop_assert_ne!(XxHash::hash64(0, &data), XxHash::hash64(0, &longer));
    }

    #[test]
    fn fast_range_stays_in_range(x in any::<u64>(), n in 1u64..=u64::MAX) {
        prop_assert!(fast_range(x, n) < n);
    }

    #[test]
    fn multiply_shift_width_holds(x in any::<u64>(), bits in 0u32..=32) {
        let v = multiply_shift(x, bits);
        if bits < 64 {
            prop_assert!(v < (1u64 << bits.max(1)) || bits == 0 && v == 0);
        }
    }

    #[test]
    fn bits_for_is_minimal(n in 2u64..=1 << 40) {
        let b = bits_for(n);
        prop_assert!((1u64 << b) >= n, "2^{b} < {n}");
        prop_assert!((1u64 << (b - 1)) < n, "2^{} >= {n}", b - 1);
    }

    #[test]
    fn splitmix_injective_on_pairs(a in any::<u64>(), b in any::<u64>()) {
        if a != b {
            prop_assert_ne!(splitmix64(a), splitmix64(b));
        }
    }

    #[test]
    fn double_hasher_is_deterministic_and_bounded(
        digest in any::<u128>(),
        range in 1u64..1_000_000,
    ) {
        let a: Vec<usize> = DoubleHasher::new(digest, range).take(16).collect();
        let b: Vec<usize> = DoubleHasher::new(digest, range).take(16).collect();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.iter().all(|&i| (i as u64) < range));
    }

    #[test]
    fn key_encoding_is_injective_within_type(a in any::<u64>(), b in any::<u64>()) {
        if a != b {
            let (ka, kb) = (a.key_bytes(), b.key_bytes());
            prop_assert_ne!(ka.as_slice(), kb.as_slice());
        }
    }

    #[test]
    fn tuple_key_is_order_sensitive(a in any::<u32>(), b in any::<u32>()) {
        if a != b {
            let (ab, ba) = ((a, b), (b, a));
            let (kab, kba) = (ab.key_bytes(), ba.key_bytes());
            prop_assert_ne!(kab.as_slice(), kba.as_slice());
        }
    }
}

#[test]
fn digest_collision_rate_is_negligible() {
    // 100k distinct keys, no 128-bit digest collisions (a collision here
    // would indicate a broken mixing stage, not chance).
    let mut seen = std::collections::HashSet::new();
    for i in 0..100_000u64 {
        assert!(
            seen.insert(Murmur3::hash128(1, &i.to_le_bytes())),
            "collision at {i}"
        );
    }
}
