//! Special functions and discrete-distribution machinery.
//!
//! Everything is computed in log space so the paper's occupancy sums —
//! binomial weights with `n = 100 000` trials — stay well-conditioned.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, 9 coefficients; |relative error| < 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln(n!)` for integer `n`.
#[inline]
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// `ln C(n, k)`; `-inf` if `k > n`.
#[inline]
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        f64::NEG_INFINITY
    } else {
        ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
    }
}

/// Log of the binomial PMF `P[X = j]`, `X ~ B(n, p)`.
pub fn binomial_ln_pmf(n: u64, p: f64, j: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p = {p} out of [0,1]");
    if j > n {
        return f64::NEG_INFINITY;
    }
    if p == 0.0 {
        return if j == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p == 1.0 {
        return if j == n { 0.0 } else { f64::NEG_INFINITY };
    }
    ln_choose(n, j) + j as f64 * p.ln() + (n - j) as f64 * (-p).ln_1p()
}

/// Binomial PMF `P[X = j]`, `X ~ B(n, p)`.
#[inline]
pub fn binomial_pmf(n: u64, p: f64, j: u64) -> f64 {
    binomial_ln_pmf(n, p, j).exp()
}

/// Exact binomial upper tail `P[X ≥ j0]`, `X ~ B(n, p)`, summed directly.
pub fn binomial_tail_ge(n: u64, p: f64, j0: u64) -> f64 {
    if j0 == 0 {
        return 1.0;
    }
    if j0 > n {
        return 0.0;
    }
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let mean = n as f64 * p;
    if (j0 as f64) <= mean {
        // j0 below the mode: pmf(j0) may underflow even though the tail is
        // large, so sum the (short) lower part and complement.
        let mut lower = 0.0;
        for j in 0..j0 {
            lower += binomial_pmf(n, p, j);
        }
        return (1.0 - lower).clamp(0.0, 1.0);
    }
    // Sum upward from j0; terms decay geometrically past the mean.
    let mut total = 0.0;
    let mut term = binomial_pmf(n, p, j0);
    total += term;
    for j in j0 + 1..=n {
        // Ratio-based recurrence avoids re-evaluating lgamma each step:
        // pmf(j)/pmf(j-1) = ((n-j+1)/j) * (p/(1-p)).
        term *= (n - j + 1) as f64 / j as f64 * (p / (1.0 - p));
        total += term;
        if term < 1e-300 || term < total * 1e-18 {
            break;
        }
    }
    total.min(1.0)
}

/// Poisson PMF `P[X = j]`, `X ~ Poisson(λ)`.
pub fn poisson_pmf(lambda: f64, j: u64) -> f64 {
    assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return if j == 0 { 1.0 } else { 0.0 };
    }
    (j as f64 * lambda.ln() - lambda - ln_factorial(j)).exp()
}

/// Poisson CDF `P[X ≤ j]`.
pub fn poisson_cdf(lambda: f64, j: u64) -> f64 {
    let mut term = (-lambda).exp();
    let mut cdf = term;
    for i in 1..=j {
        term *= lambda / i as f64;
        cdf += term;
    }
    cdf.min(1.0)
}

/// Inverse Poisson CDF: the smallest `j` with `P[X ≤ j] ≥ p`
/// (the paper's `PoissInv(p, λ)`, Eq. 11).
pub fn poisson_inv_cdf(p: f64, lambda: f64) -> u64 {
    assert!((0.0..1.0).contains(&p) || p == 1.0, "p = {p} out of [0,1]");
    assert!(lambda >= 0.0);
    if lambda == 0.0 {
        return 0;
    }
    let mut term = (-lambda).exp();
    let mut cdf = term;
    let mut j = 0u64;
    // Guard: for p extremely close to 1 the loop still terminates because
    // cdf → 1; cap at a generous multiple of λ to be safe against rounding.
    let cap = (lambda * 20.0 + 200.0) as u64;
    while cdf < p && j < cap {
        j += 1;
        term *= lambda / j as f64;
        cdf += term;
    }
    j
}

/// Kahan-compensated sum of `f(j) · w(j)` over `j = 0..`, where `w(j)` are
/// `B(n, p)` binomial weights, truncated once the explored probability mass
/// exceeds `1 − 1e-18` (covers the paper's Σ over word occupancy).
pub fn binomial_expectation(n: u64, p: f64, mut f: impl FnMut(u64) -> f64) -> f64 {
    let mut sum = 0.0;
    let mut comp = 0.0;
    let mut mass = 0.0;
    // Iterate with the multiplicative recurrence from j = 0.
    if p <= 0.0 {
        return f(0);
    }
    if p >= 1.0 {
        return f(n);
    }
    let mut w = ((n as f64) * (-p).ln_1p()).exp(); // (1-p)^n
    let ratio = p / (1.0 - p);
    for j in 0..=n {
        if w > 0.0 {
            let term = w * f(j);
            let y = term - comp;
            let t = sum + y;
            comp = (t - sum) - y;
            sum = t;
            mass += w;
            if mass > 1.0 - 1e-18 {
                break;
            }
        } else if j as f64 > n as f64 * p {
            break; // weight underflowed past the mode: remaining mass ≈ 0
        }
        if j < n {
            w *= (n - j) as f64 / (j + 1) as f64 * ratio;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-10);
        assert!((ln_choose(10, 0)).abs() < 1e-10);
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
        // Large n stays finite and accurate: C(100000, 2) = 4999950000.
        assert!((ln_choose(100_000, 2) - 4_999_950_000f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 50;
        let p = 0.3;
        let total: f64 = (0..=n).map(|j| binomial_pmf(n, p, j)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn binomial_pmf_degenerate_p() {
        assert_eq!(binomial_pmf(10, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(10, 0.0, 1), 0.0);
        assert_eq!(binomial_pmf(10, 1.0, 10), 1.0);
        assert_eq!(binomial_pmf(10, 1.0, 9), 0.0);
    }

    #[test]
    fn binomial_tail_matches_direct_sum() {
        let n = 40;
        let p = 0.2;
        for j0 in [0u64, 1, 5, 10, 20, 40, 41] {
            let direct: f64 = (j0..=n).map(|j| binomial_pmf(n, p, j)).sum();
            let tail = binomial_tail_ge(n, p, j0);
            assert!(
                (tail - direct).abs() < 1e-12,
                "j0 = {j0}: {tail} vs {direct}"
            );
        }
    }

    #[test]
    fn poisson_pmf_and_cdf_consistent() {
        let lambda = 1.6;
        let mut acc = 0.0;
        for j in 0..=30 {
            acc += poisson_pmf(lambda, j);
            assert!((poisson_cdf(lambda, j) - acc).abs() < 1e-12, "j = {j}");
        }
        assert!((acc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_inv_cdf_is_quantile() {
        let lambda = 1.6;
        for &p in &[0.5, 0.9, 0.99, 0.9999, 1.0 - 1.0 / 65536.0] {
            let j = poisson_inv_cdf(p, lambda);
            assert!(poisson_cdf(lambda, j) >= p);
            if j > 0 {
                assert!(poisson_cdf(lambda, j - 1) < p);
            }
        }
    }

    #[test]
    fn poisson_inv_cdf_paper_example() {
        // §IV.B: the heuristic chooses n_max ∈ {7..10} for the experimental
        // range l = 62500..250000 with n = 100000.
        for &l in &[62_500u64, 125_000, 250_000] {
            let lambda = 100_000.0 / l as f64;
            let nmax = poisson_inv_cdf(1.0 - 1.0 / l as f64, lambda);
            assert!((6..=11).contains(&nmax), "l = {l} gave n_max = {nmax}");
        }
    }

    #[test]
    fn binomial_expectation_of_constant_is_constant() {
        let e = binomial_expectation(100_000, 1.0 / 62_500.0, |_| 1.0);
        assert!((e - 1.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn binomial_expectation_of_identity_is_np() {
        let n = 10_000u64;
        let p = 3e-4;
        let e = binomial_expectation(n, p, |j| j as f64);
        assert!((e - n as f64 * p).abs() < 1e-6, "{e}");
    }

    #[test]
    fn binomial_expectation_degenerate() {
        assert_eq!(binomial_expectation(10, 0.0, |j| j as f64), 0.0);
        assert_eq!(binomial_expectation(10, 1.0, |j| j as f64), 10.0);
    }
}
