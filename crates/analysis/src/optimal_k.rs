//! Brute-force optimal-`k` search (§IV.C, Figs. 9–10).
//!
//! CBF's optimum follows the classical `(m/n)·ln 2` rule and grows with
//! memory; MPCBF's optimum is found by exhaustive search over Eq. (8)
//! because enlarging `k` also shrinks `b1 = w − ceil(k/g)·n_max` — the
//! paper observes the MPCBF optimum stays nearly constant (k ≈ 3 for
//! MPCBF-1, 4–5 for MPCBF-2, 5 for MPCBF-3).

use crate::heuristic::derive_shape;
use crate::{cbf, mpcbf};

/// Optimal `k` for a standard CBF with `big_m` bits of memory at counter
/// width `c` (Fig. 9's CBF series): the `(m/n)·ln 2` rule evaluated exactly.
pub fn optimal_k_cbf(big_m: u64, c: u32, n: u64) -> u32 {
    let m = big_m / u64::from(c);
    cbf::optimal_k(n, m)
}

/// Result of the exhaustive MPCBF search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalK {
    /// The FPR-minimising hash count.
    pub k: u32,
    /// The false-positive rate achieved at that `k`.
    pub fpr: f64,
}

/// Exhaustive search for the `k` minimising MPCBF-g's FPR (Eq. 8 with the
/// improved-HCBF `b1`), scanning `k = g..=k_cap`.
///
/// Infeasible `k` (first level too small) are skipped; returns `None` if
/// no `k` is feasible at all.
pub fn optimal_k_mpcbf(big_m: u64, w: u32, n: u64, g: u32, k_cap: u32) -> Option<OptimalK> {
    let mut best: Option<OptimalK> = None;
    for k in g.max(1)..=k_cap {
        let Ok(shape) = derive_shape(big_m, w, n, k, g) else {
            continue;
        };
        let fpr = mpcbf::fpr_mpcbf_g_b1(n, shape.l, k, g, shape.b1);
        if best.is_none_or(|b| fpr < b.fpr) {
            best = Some(OptimalK { k, fpr });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 100_000;

    #[test]
    fn cbf_optimum_grows_with_memory_fig9() {
        // Fig. 9: CBF's optimal k climbs from ~6 to ~12 over 4–8 Mb.
        let k4 = optimal_k_cbf(4_000_000, 4, N);
        let k8 = optimal_k_cbf(8_000_000, 4, N);
        assert!((5..=8).contains(&k4), "k at 4 Mb = {k4}");
        assert!((11..=15).contains(&k8), "k at 8 Mb = {k8}");
        assert!(k8 > k4);
    }

    #[test]
    fn mpcbf1_optimum_is_nearly_constant_fig9() {
        // Fig. 9: "for MPCBF, the optimal value of k is almost constant
        // (k = 3 for MPCBF-1...)".
        for &big_m in &[4_000_000u64, 5_000_000, 6_000_000, 7_000_000, 8_000_000] {
            let got = optimal_k_mpcbf(big_m, 64, N, 1, 16).unwrap();
            assert!(
                (2..=4).contains(&got.k),
                "M={big_m}: optimal k = {} (fpr {})",
                got.k,
                got.fpr
            );
        }
    }

    #[test]
    fn mpcbf2_optimum_around_4_or_5_fig9() {
        for &big_m in &[4_000_000u64, 6_000_000, 8_000_000] {
            let got = optimal_k_mpcbf(big_m, 64, N, 2, 16).unwrap();
            assert!((3..=6).contains(&got.k), "M={big_m}: optimal k = {}", got.k);
        }
    }

    #[test]
    fn mpcbf3_beats_optimal_cbf_fig10() {
        // Fig. 10: MPCBF-3's FPR at its optimum is about an order of
        // magnitude below optimally-tuned CBF at 8 Mb.
        let big_m = 8_000_000;
        let k_cbf = optimal_k_cbf(big_m, 4, N);
        let f_cbf = cbf::fpr(N, big_m / 4, k_cbf);
        let got = optimal_k_mpcbf(big_m, 64, N, 3, 16).unwrap();
        assert!(
            got.fpr * 3.0 < f_cbf,
            "MPCBF-3 {} vs optimal CBF {f_cbf}",
            got.fpr
        );
    }

    #[test]
    fn search_result_is_a_true_minimum() {
        let big_m = 6_000_000;
        let best = optimal_k_mpcbf(big_m, 64, N, 1, 16).unwrap();
        for k in 1..=16u32 {
            if let Ok(s) = crate::heuristic::derive_shape(big_m, 64, N, k, 1) {
                let f = crate::mpcbf::fpr_mpcbf_g_b1(N, s.l, k, 1, s.b1);
                assert!(best.fpr <= f + 1e-18, "k = {k} beats the reported optimum");
            }
        }
    }

    #[test]
    fn infeasible_everywhere_returns_none() {
        // One word only: shapes all fail.
        assert!(optimal_k_mpcbf(64, 64, 1000, 1, 8).is_none());
    }
}
