//! Design aids: inverse sizing and head-to-head comparisons.
//!
//! The paper's evaluation fixes memory and compares FPRs; a practitioner
//! usually works the other way — "I need FPR ≤ 10⁻³ for 10⁶ flows, how
//! much SRAM does each structure cost, and at how many memory accesses?"
//! This module answers that by inverting the closed forms with a simple
//! doubling + bisection search (all the FPR curves are monotone in
//! memory, which [`crate::cbf`]/[`crate::mpcbf`] tests pin down).

use crate::heuristic::derive_shape;
use crate::{cbf, mpcbf};

/// Upper bound on the memory search (1 Gbit) — configurations beyond this
/// are outside any on-chip-memory scenario the paper targets.
const MEMORY_CAP: u64 = 1 << 30;

fn search_memory(target_fpr: f64, mut fpr_at: impl FnMut(u64) -> Option<f64>) -> Option<u64> {
    assert!(
        target_fpr > 0.0 && target_fpr < 1.0,
        "target FPR out of (0,1)"
    );
    // Exponential search for a feasible upper bracket.
    let mut hi = 1u64 << 10;
    let mut lo = hi;
    loop {
        match fpr_at(hi) {
            Some(f) if f <= target_fpr => break,
            _ => {
                lo = hi;
                hi *= 2;
                if hi > MEMORY_CAP {
                    return None;
                }
            }
        }
    }
    // Bisection to ~0.5% memory granularity.
    while hi - lo > hi / 200 + 64 {
        let mid = lo + (hi - lo) / 2;
        match fpr_at(mid) {
            Some(f) if f <= target_fpr => hi = mid,
            _ => lo = mid,
        }
    }
    Some(hi)
}

/// Minimum memory (bits) for a standard CBF (4-bit counters, given `k`)
/// to reach `target_fpr` holding `n` elements.
pub fn cbf_memory_for_fpr(n: u64, k: u32, target_fpr: f64) -> Option<u64> {
    search_memory(target_fpr, |big_m| {
        let m = big_m / 4;
        (m > 0).then(|| cbf::fpr(n, m, k))
    })
}

/// Minimum memory (bits) for MPCBF-g (word size `w`, given `k`, Eq.-(11)
/// capacity) to reach `target_fpr` holding `n` elements.
pub fn mpcbf_memory_for_fpr(n: u64, w: u32, k: u32, g: u32, target_fpr: f64) -> Option<u64> {
    search_memory(target_fpr, |big_m| {
        derive_shape(big_m, w, n, k, g)
            .ok()
            .map(|s| mpcbf::fpr_mpcbf_g_b1(n, s.l, k, g, s.b1))
    })
}

/// A head-to-head design card at a target FPR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Memory in bits.
    pub memory_bits: u64,
    /// Memory accesses per query.
    pub query_accesses: u32,
    /// Bits per stored element.
    pub bits_per_element: f64,
}

/// Compares CBF and MPCBF-g at the same target FPR, each with the given
/// hash counts; returns `(cbf, mpcbf)` design points.
pub fn compare_at_fpr(
    n: u64,
    k_cbf: u32,
    k_mp: u32,
    g: u32,
    w: u32,
    target_fpr: f64,
) -> Option<(DesignPoint, DesignPoint)> {
    let m_cbf = cbf_memory_for_fpr(n, k_cbf, target_fpr)?;
    let m_mp = mpcbf_memory_for_fpr(n, w, k_mp, g, target_fpr)?;
    Some((
        DesignPoint {
            memory_bits: m_cbf,
            query_accesses: k_cbf,
            bits_per_element: m_cbf as f64 / n as f64,
        },
        DesignPoint {
            memory_bits: m_mp,
            query_accesses: g,
            bits_per_element: m_mp as f64 / n as f64,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 100_000;

    #[test]
    fn inverse_sizing_hits_the_target() {
        let target = 1e-3;
        let m = cbf_memory_for_fpr(N, 3, target).unwrap();
        let achieved = cbf::fpr(N, m / 4, 3);
        assert!(achieved <= target, "achieved {achieved} > target {target}");
        // And is tight: 3% less memory must miss the target.
        let tighter = cbf::fpr(N, (m - m / 30) / 4, 3);
        assert!(tighter > target, "bound not tight: {tighter} <= {target}");
    }

    #[test]
    fn mpcbf_inverse_sizing_hits_the_target() {
        let target = 1e-3;
        let m = mpcbf_memory_for_fpr(N, 64, 3, 1, target).unwrap();
        let s = derive_shape(m, 64, N, 3, 1).unwrap();
        let achieved = mpcbf::fpr_mpcbf_g_b1(N, s.l, 3, 1, s.b1);
        assert!(achieved <= target);
    }

    #[test]
    fn mpcbf_needs_less_memory_at_equal_k() {
        // The paper's headline, inverted: same k = 3, same FPR target,
        // MPCBF-1 needs meaningfully less memory than CBF.
        let target = 5e-3;
        let m_cbf = cbf_memory_for_fpr(N, 3, target).unwrap();
        let m_mp = mpcbf_memory_for_fpr(N, 64, 3, 1, target).unwrap();
        assert!(
            (m_mp as f64) < 0.9 * m_cbf as f64,
            "MPCBF {m_mp} not clearly below CBF {m_cbf}"
        );
    }

    #[test]
    fn compare_card_is_consistent() {
        let (c, m) = compare_at_fpr(N, 3, 3, 2, 64, 1e-3).unwrap();
        assert_eq!(c.query_accesses, 3);
        assert_eq!(m.query_accesses, 2);
        assert!(m.memory_bits < c.memory_bits);
        assert!((c.bits_per_element - c.memory_bits as f64 / N as f64).abs() < 1e-9);
    }

    #[test]
    fn unreachable_targets_return_none() {
        // FPR 1e-30 with k = 1 would need absurd memory.
        assert_eq!(cbf_memory_for_fpr(N, 1, 1e-30), None);
    }

    #[test]
    #[should_panic(expected = "out of (0,1)")]
    fn zero_target_panics() {
        let _ = cbf_memory_for_fpr(N, 3, 0.0);
    }
}
