//! PCBF analysis: Eq. (2) (PCBF-1) and Eq. (3) (PCBF-g), §III.A.
//!
//! PCBF hashes each element to `g` of `l` words and to `k/g` of the
//! `w/4` counters inside each word. A false positive needs all hashed
//! counters nonzero; the occupancy of a word follows `B(n, 1/l)` (or
//! `B(gn, 1/l)` for PCBF-g), which is what the paper's sums marginalise.

use crate::math::binomial_expectation;

/// Conditional FP probability inside one word holding `j` element-slots,
/// each setting up to `kk` of `b` positions; the query checks `kk`
/// positions: `(1 − (1 − 1/b)^{j·kk})^{kk}` with real-valued `kk`.
#[inline]
fn word_fp(j: u64, b: u64, j_hashes: f64, q_hashes: f64) -> f64 {
    let not_set = ((j as f64) * j_hashes * (-(1.0 / b as f64)).ln_1p()).exp();
    (1.0 - not_set).powf(q_hashes)
}

/// Eq. (2): false-positive rate of PCBF-1.
///
/// `n` elements, `l` words of `w` bits (holding `w/4` 4-bit counters),
/// `k` hash functions all landing in one word.
pub fn fpr_pcbf1(n: u64, l: u64, w: u32, k: u32) -> f64 {
    assert!(l > 0 && w >= 8);
    let b = u64::from(w) / 4;
    binomial_expectation(n, 1.0 / l as f64, |j| {
        word_fp(j, b, f64::from(k), f64::from(k))
    })
}

/// Eq. (3): false-positive rate of PCBF-g.
///
/// Each element occupies `g` words with `k/g` hashes per word; a word's
/// slot count follows `B(gn, 1/l)`. The paper treats the `g` word checks
/// as independent, giving the outer power of `g`.
pub fn fpr_pcbf_g(n: u64, l: u64, w: u32, k: u32, g: u32) -> f64 {
    assert!(g >= 1 && k >= g, "need k >= g >= 1");
    if g == 1 {
        return fpr_pcbf1(n, l, w, k);
    }
    let b = u64::from(w) / 4;
    let kg = f64::from(k) / f64::from(g);
    let per_word = binomial_expectation(g as u64 * n, 1.0 / l as f64, |j| word_fp(j, b, kg, kg));
    per_word.powi(g as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbf;

    const N: u64 = 100_000;
    const BIG_M: u64 = 4_000_000; // 4 Mb
    const W: u32 = 64;
    const L: u64 = BIG_M / W as u64;

    #[test]
    fn pcbf1_worse_than_cbf_fig2() {
        // Fig. 2: PCBF-1 has a larger FPR than the standard CBF.
        let f_cbf = cbf::fpr(N, BIG_M / 4, 3);
        let f_p1 = fpr_pcbf1(N, L, W, 3);
        assert!(f_p1 > f_cbf, "PCBF-1 {f_p1} should exceed CBF {f_cbf}");
    }

    #[test]
    fn pcbf2_between_pcbf1_and_cbf_fig2() {
        // Fig. 2: f_CBF < f_PCBF-2 < f_PCBF-1.
        let f_cbf = cbf::fpr(N, BIG_M / 4, 4);
        let f_p1 = fpr_pcbf1(N, L, W, 4);
        let f_p2 = fpr_pcbf_g(N, L, W, 4, 2);
        assert!(f_p2 < f_p1, "PCBF-2 {f_p2} should beat PCBF-1 {f_p1}");
        assert!(f_p2 > f_cbf, "PCBF-2 {f_p2} should still trail CBF {f_cbf}");
    }

    #[test]
    fn larger_words_converge_to_cbf_fig2() {
        // §III.A.1: "when w increases the false positive rate of PCBF-1
        // converges to that of CBF".
        let f_cbf = cbf::fpr(N, BIG_M / 4, 3);
        let mut prev_gap = f64::INFINITY;
        for w in [16u32, 32, 64, 128, 256] {
            let l = BIG_M / u64::from(w);
            let gap = fpr_pcbf1(N, l, w, 3) - f_cbf;
            assert!(gap >= -1e-6, "w = {w}: PCBF-1 below CBF?");
            assert!(gap <= prev_gap + 1e-12, "gap not shrinking at w = {w}");
            prev_gap = gap;
        }
    }

    #[test]
    fn fpr_monotone_in_memory() {
        let f_small = fpr_pcbf1(N, 62_500, W, 3);
        let f_large = fpr_pcbf1(N, 125_000, W, 3);
        assert!(f_large < f_small);
    }

    #[test]
    fn g1_reduces_to_pcbf1() {
        let a = fpr_pcbf_g(N, L, W, 3, 1);
        let b = fpr_pcbf1(N, L, W, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_filter_has_zero_fpr() {
        assert_eq!(fpr_pcbf1(0, L, W, 3), 0.0);
        assert_eq!(fpr_pcbf_g(0, L, W, 4, 2), 0.0);
    }
}
