//! Word-overflow analysis: Eq. (6), Eq. (10) and the exact binomial tail
//! (§III.B.4).
//!
//! An HCBF word overflows when the bits demanded by its hierarchy exceed
//! `w − b1 = k·n_max` — i.e. when more than `n_max` element-slots land in
//! it. The paper bounds `P[E ≥ n_max]` with the Chernoff-style expression
//! `C(n, n_max)·l^{−n_max} ≤ (e·n / (n_max·l))^{n_max}` and trades this
//! probability off against `b1` (bigger `b1` ⇒ lower FPR but tighter
//! capacity ⇒ likelier overflow).

use crate::math::{binomial_tail_ge, ln_choose};

/// Eq. (6): the paper's closed-form upper bound on the probability that a
/// given word receives at least `n_max` of `n` elements spread over `l`
/// words: `(e·n / (n_max·l))^{n_max}`.
pub fn overflow_bound_mpcbf1(n: u64, l: u64, n_max: u32) -> f64 {
    assert!(l > 0 && n_max > 0);
    let base = std::f64::consts::E * n as f64 / (f64::from(n_max) * l as f64);
    base.powi(n_max as i32).min(1.0)
}

/// Eq. (10): the same bound for MPCBF-g, where a word receives slots from
/// `gn` trials: `(e·g·n / (n'_max·l))^{n'_max}`.
pub fn overflow_bound_mpcbf_g(n: u64, l: u64, g: u32, n_max: u32) -> f64 {
    overflow_bound_mpcbf1(g as u64 * n, l, n_max)
}

/// The intermediate (pre-Stirling) form the paper derives first:
/// `C(n, n_max)·(1/l)^{n_max}`, computed in log space.
pub fn overflow_binomial_coefficient_bound(n: u64, l: u64, n_max: u32) -> f64 {
    let ln = ln_choose(n, u64::from(n_max)) - f64::from(n_max) * (l as f64).ln();
    ln.exp().min(1.0)
}

/// Exact per-word overflow probability `P[B(n, 1/l) ≥ n_max]`.
pub fn overflow_exact(n: u64, l: u64, n_max: u32) -> f64 {
    binomial_tail_ge(n, 1.0 / l as f64, u64::from(n_max))
}

/// Union bound on *any* of the `l` words overflowing.
pub fn any_word_overflow(n: u64, l: u64, n_max: u32) -> f64 {
    (l as f64 * overflow_exact(n, l, n_max)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: u64 = 100_000;

    #[test]
    fn bound_dominates_exact() {
        for &l in &[62_500u64, 125_000] {
            for n_max in 4..=16u32 {
                let exact = overflow_exact(N, l, n_max);
                let bound = overflow_bound_mpcbf1(N, l, n_max);
                assert!(
                    bound + 1e-15 >= exact,
                    "l={l} n_max={n_max}: bound {bound} < exact {exact}"
                );
            }
        }
    }

    #[test]
    fn stirling_dominates_binomial_coefficient_form() {
        // (e·n/(n_max·l))^{n_max} ≥ C(n,n_max)/l^{n_max} (Stirling).
        for n_max in 2..=20u32 {
            let a = overflow_binomial_coefficient_bound(N, 62_500, n_max);
            let b = overflow_bound_mpcbf1(N, 62_500, n_max);
            assert!(b + 1e-15 >= a, "n_max={n_max}: {b} < {a}");
        }
    }

    #[test]
    fn overflow_decreases_in_n_max_fig6() {
        // Fig. 6: the overflow probability falls steeply as n_max grows.
        let mut prev = 1.0f64;
        for n_max in 2..=20u32 {
            let p = overflow_exact(N, 62_500, n_max);
            assert!(p <= prev);
            prev = p;
        }
        assert!(prev < 1e-9, "tail should be tiny by n_max = 20: {prev}");
    }

    #[test]
    fn wider_words_give_lower_overflow_fig6() {
        // Fig. 6 compares w = 32 vs w = 64 at fixed memory: w = 64 means
        // fewer, larger words (higher λ = n/l), so at the same n_max the
        // *capacity headroom* matters; the paper's point is that w = 64
        // admits feasible (n_max, overflow) choices w = 32 cannot reach.
        // Check: at equal memory, the n_max needed for overflow ≤ 1e-9 is
        // proportionally smaller relative to capacity for w = 64.
        let big_m = 4_000_000u64;
        let need = |w: u64| {
            let l = big_m / w;
            (1..200u32)
                .find(|&nm| any_word_overflow(N, l, nm) < 1e-9)
                .unwrap()
        };
        let nm32 = need(32);
        let nm64 = need(64);
        // Capacity fraction k*n_max/w at k=3:
        let frac32 = 3.0 * f64::from(nm32) / 32.0;
        let frac64 = 3.0 * f64::from(nm64) / 64.0;
        assert!(
            frac64 < frac32,
            "w=64 should spend a smaller fraction of the word: {frac64} vs {frac32}"
        );
    }

    #[test]
    fn g_bound_matches_scaled_n() {
        assert_eq!(
            overflow_bound_mpcbf_g(N, 62_500, 2, 12),
            overflow_bound_mpcbf1(2 * N, 62_500, 12)
        );
    }

    #[test]
    fn union_bound_saturates_at_one() {
        assert_eq!(any_word_overflow(1_000_000, 10, 1), 1.0);
    }
}
