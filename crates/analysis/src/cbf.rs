//! Standard Bloom-filter / CBF analysis (Eq. 1 and §II.A).

/// False-positive rate of a standard Bloom filter or CBF (Eq. 1):
/// `f = (1 − (1 − 1/m)^{kn})^k`.
///
/// `m` is the number of membership positions (bits for a Bloom filter,
/// counters for a CBF), `n` the stored elements, `k` the hash count.
pub fn fpr(n: u64, m: u64, k: u32) -> f64 {
    assert!(m > 0, "m must be positive");
    let exponent = (k as f64) * (n as f64) * (-(1.0 / m as f64)).ln_1p();
    (1.0 - exponent.exp()).powi(k as i32)
}

/// The asymptotic form `f ≈ (1 − e^{−kn/m})^k` (also Eq. 1).
pub fn fpr_asymptotic(n: u64, m: u64, k: u32) -> f64 {
    assert!(m > 0, "m must be positive");
    (1.0 - (-(k as f64) * n as f64 / m as f64).exp()).powi(k as i32)
}

/// The FPR-optimal hash count `k = (m/n)·ln 2`, rounded to the better of
/// the two neighbouring integers (§II.A).
pub fn optimal_k(n: u64, m: u64) -> u32 {
    assert!(n > 0 && m > 0);
    let kf = (m as f64 / n as f64) * std::f64::consts::LN_2;
    let lo = kf.floor().max(1.0) as u32;
    let hi = lo + 1;
    if fpr(n, m, lo) <= fpr(n, m, hi) {
        lo
    } else {
        hi
    }
}

/// CBF counters for a memory budget of `big_m` bits at counter width `c`
/// (the paper's layout: `m = big_m / c`, `c = 4`).
#[inline]
pub fn counters_for_memory(big_m: u64, c: u32) -> u64 {
    big_m / u64::from(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_m_over_n_10_k_7() {
        // §II.A: "when m/n = 10 and k = 7, the false positive rate f is
        // about 0.008".
        let f = fpr_asymptotic(100_000, 1_000_000, 7);
        assert!((f - 0.008).abs() < 0.002, "f = {f}");
    }

    #[test]
    fn exact_and_asymptotic_agree_for_large_m() {
        let (n, m, k) = (100_000, 1_000_000, 3);
        let a = fpr(n, m, k);
        let b = fpr_asymptotic(n, m, k);
        assert!((a - b).abs() / b < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn fpr_monotone_in_n_and_m() {
        let k = 3;
        assert!(fpr(10_000, 1 << 20, k) < fpr(20_000, 1 << 20, k));
        assert!(fpr(10_000, 1 << 21, k) < fpr(10_000, 1 << 20, k));
    }

    #[test]
    fn optimal_k_matches_ln2_rule() {
        // m/n = 10 ⇒ k* ≈ 6.93 ⇒ 7.
        assert_eq!(optimal_k(100_000, 1_000_000), 7);
        // m/n = 20 ⇒ k* ≈ 13.86 ⇒ 14.
        assert_eq!(optimal_k(100_000, 2_000_000), 14);
    }

    #[test]
    fn optimal_k_beats_neighbours() {
        let (n, m) = (100_000u64, 1_500_000u64);
        let k = optimal_k(n, m);
        let f = fpr(n, m, k);
        if k > 1 {
            assert!(f <= fpr(n, m, k - 1));
        }
        assert!(f <= fpr(n, m, k + 1));
    }

    #[test]
    fn counters_for_memory_matches_paper_layout() {
        // 4 Mb (decimal) at 4 bits/counter = 1 000 000 counters.
        assert_eq!(counters_for_memory(4_000_000, 4), 1_000_000);
    }

    #[test]
    fn fpr_edge_cases() {
        assert_eq!(fpr(0, 100, 3), 0.0); // empty filter never errs
        assert!(fpr(1_000_000, 10, 3) > 0.99); // overloaded filter ≈ always
    }
}
