//! Analytical models from the MPCBF paper (IPDPS 2013).
//!
//! This crate implements, in pure safe Rust with no dependencies, every
//! closed-form expression the paper derives:
//!
//! | Paper element | Module |
//! |---|---|
//! | Eq. (1): standard Bloom/CBF false-positive rate, optimal `k = (m/n)·ln 2` | [`cbf`] |
//! | Eq. (2): PCBF-1 FPR; Eq. (3): PCBF-g FPR | [`pcbf`] |
//! | Eq. (4)–(5): MPCBF-1 FPR (basic and improved HCBF); Eq. (8)–(9) and the per-word-average forms for MPCBF-g | [`mpcbf`] |
//! | Eq. (6)/(10): word-overflow probability bounds, plus the exact binomial tail | [`overflow`] |
//! | Eq. (11): the inverse-Poisson `n_max` heuristic (§IV.B) | [`heuristic`] |
//! | §IV.C: brute-force optimal-`k` search for CBF and MPCBF-g | [`optimal_k`] |
//! | (extension) inverse sizing: memory needed for a target FPR | [`tradeoff`] |
//! | (extension) fingerprint-filter FPR models (dlCBF/RCBF) | [`fingerprint`] |
//!
//! plus the supporting special-function machinery (log-gamma, log-space
//! binomial PMF, Poisson PMF/CDF/quantile) in [`math`].
//!
//! These models regenerate the paper's analytical figures (Figs. 2, 5, 6,
//! 9, 10) and are cross-checked against the empirical filters in the
//! workspace integration tests.
//!
//! ## Conventions
//!
//! * `n` — number of elements stored; `m` — number of counters (CBF view);
//!   `big_m` — memory in **bits** (`big_m = 4·m` for a 4-bit-counter CBF and
//!   `big_m = l·w` for any word-partitioned filter).
//! * `l` — number of words; `w` — word size in bits; `k` — hash count;
//!   `g` — memory accesses (words per element).
//! * All probabilities are `f64`; sums over the binomial/Poisson occupancy
//!   variable are truncated when the remaining tail is below `1e-18`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cbf;
pub mod fingerprint;
pub mod heuristic;
pub mod math;
pub mod mpcbf;
pub mod optimal_k;
pub mod overflow;
pub mod pcbf;
pub mod tradeoff;

pub use heuristic::{n_max_heuristic, MpcbfShape};
pub use mpcbf::B1Underflow;
pub use optimal_k::{optimal_k_cbf, optimal_k_mpcbf};

/// Counters per 4-bit-counter CBF word of `w` bits (the paper's `w/4`).
#[inline]
pub fn counters_per_word(w: u32) -> u64 {
    u64::from(w) / 4
}
