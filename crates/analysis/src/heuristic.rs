//! The `n_max` heuristic (Eq. 11, §IV.B) and derived MPCBF shape parameters.
//!
//! The paper sizes each word's capacity with the inverse Poisson CDF:
//! `n_max = PoissInv(1 − 1/l, n/l)` — i.e. pick the occupancy quantile at
//! which, in expectation, *less than one* of the `l` words overflows. For
//! MPCBF-g the word sees `gn` placement trials, so `λ = gn/l`.
//! With this choice the paper "never observed any word overflow".

use crate::math::poisson_inv_cdf;

/// Eq. (11): `n_max = PoissInv(1 − 1/l, g·n/l)`.
pub fn n_max_heuristic(n: u64, l: u64, g: u32) -> u64 {
    assert!(l > 1, "need at least two words");
    let lambda = g as u64 as f64 * n as f64 / l as f64;
    let p = 1.0 - 1.0 / l as f64;
    poisson_inv_cdf(p, lambda).max(1)
}

/// The fully derived shape of an MPCBF instance: word count, capacity and
/// first-level size, as §III.B.3/§III.C prescribe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpcbfShape {
    /// Number of words `l = M / w`.
    pub l: u64,
    /// Word size in bits.
    pub w: u32,
    /// Hash functions in total.
    pub k: u32,
    /// Memory accesses (words per element).
    pub g: u32,
    /// Per-word element capacity from Eq. (11).
    pub n_max: u32,
    /// Hashes applied in each word: `ceil(k/g)` for the fullest word.
    pub k_per_word: u32,
    /// First-level sub-vector size `b1 = w − ceil(k/g)·n_max`.
    pub b1: u32,
}

/// Errors from shape derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// Memory too small to hold at least two words of `w` bits.
    TooFewWords {
        /// Derived word count.
        l: u64,
    },
    /// `w − ceil(k/g)·n_max` left no room for the first level.
    FirstLevelTooSmall {
        /// The (non-positive or sub-k) first-level size that resulted.
        b1: i64,
        /// The capacity term `ceil(k/g)·n_max`.
        hierarchy_bits: u32,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::TooFewWords { l } => {
                write!(f, "memory yields only {l} word(s); need at least 2")
            }
            ShapeError::FirstLevelTooSmall { b1, hierarchy_bits } => write!(
                f,
                "first level would be {b1} bits after reserving {hierarchy_bits} hierarchy bits; \
                 increase memory or word size, or reduce k"
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

/// Derives the complete MPCBF-g shape for a memory budget of `big_m` bits.
///
/// Follows §III.B.3/§III.C: `l = M/w`, `n_max` from Eq. (11) (with `gn`
/// trials), `b1 = w − ceil(k/g)·n_max`, requiring `b1 ≥ k` so a query has
/// at least as many first-level positions as hashes.
pub fn derive_shape(big_m: u64, w: u32, n: u64, k: u32, g: u32) -> Result<MpcbfShape, ShapeError> {
    assert!(w >= 8 && k >= 1 && g >= 1 && k >= g);
    let l = big_m / u64::from(w);
    if l < 2 {
        return Err(ShapeError::TooFewWords { l });
    }
    let n_max = n_max_heuristic(n, l, g) as u32;
    let k_per_word = k.div_ceil(g);
    let hierarchy_bits = k_per_word * n_max;
    let b1 = i64::from(w) - i64::from(hierarchy_bits);
    if b1 < i64::from(k_per_word.max(1)) {
        return Err(ShapeError::FirstLevelTooSmall { b1, hierarchy_bits });
    }
    Ok(MpcbfShape {
        l,
        w,
        k,
        g,
        n_max,
        k_per_word,
        b1: b1 as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_range_of_n_max_and_b1() {
        // §IV.B: with w = 64, the heuristic picks n_max from 10 down to 7
        // over the experimental memory range, i.e. b1 = 34..43 for k = 3.
        for &big_m in &[4_000_000u64, 6_000_000, 8_000_000] {
            let s = derive_shape(big_m, 64, 100_000, 3, 1).unwrap();
            assert!(
                (7..=10).contains(&s.n_max),
                "M={big_m}: n_max = {}",
                s.n_max
            );
            assert!((34..=43).contains(&s.b1), "M={big_m}: b1 = {}", s.b1);
        }
    }

    #[test]
    fn paper_range_k4() {
        // §IV.B: b1 = 24..36 for k = 4, w = 64.
        for &big_m in &[4_000_000u64, 6_000_000, 8_000_000] {
            let s = derive_shape(big_m, 64, 100_000, 4, 1).unwrap();
            assert!((24..=36).contains(&s.b1), "M={big_m}: b1 = {}", s.b1);
        }
    }

    #[test]
    fn overflow_never_expected_at_heuristic() {
        // The defining property: expected overflowing words < 1.
        use crate::overflow::overflow_exact;
        let s = derive_shape(4_000_000, 64, 100_000, 3, 1).unwrap();
        let per_word = overflow_exact(100_000, s.l, s.n_max + 1);
        assert!(per_word * s.l as f64 <= 1.5, "expected overflows too high");
    }

    #[test]
    fn g2_splits_hashes() {
        let s = derive_shape(4_000_000, 64, 100_000, 3, 2).unwrap();
        assert_eq!(s.k_per_word, 2); // ceil(3/2)
        assert!(s.b1 >= 2);
    }

    #[test]
    fn too_small_memory_errors() {
        assert!(matches!(
            derive_shape(64, 64, 1000, 3, 1),
            Err(ShapeError::TooFewWords { .. })
        ));
    }

    #[test]
    fn overloaded_word_errors() {
        // Tiny words with huge per-word load: no room for the first level.
        let err = derive_shape(16_000, 16, 1_000_000, 4, 1).unwrap_err();
        assert!(matches!(err, ShapeError::FirstLevelTooSmall { .. }));
        // Display should render without panicking.
        let _ = err.to_string();
    }

    #[test]
    fn n_max_grows_with_load() {
        let a = n_max_heuristic(100_000, 62_500, 1);
        let b = n_max_heuristic(400_000, 62_500, 1);
        assert!(b > a);
        let c = n_max_heuristic(100_000, 62_500, 2);
        assert!(c > a, "g=2 doubles the trials");
    }
}
