//! False-positive models for the fingerprint-based comparators
//! (dlCBF, reference \[17\]; RCBF, reference \[18\]).
//!
//! A fingerprint filter errs when a *stranger*'s fingerprint collides
//! with a stored fingerprint in one of its candidate buckets. With `r`
//! fingerprint bits and `E` stored entries visible to a query, the FPR is
//! `1 − (1 − 2^−r)^E` — the expression both original papers size against
//! and the one the extended benches cross-check.

/// FPR of a fingerprint structure whose query compares against
/// `entries_visible` stored fingerprints of `r` bits:
/// `1 − (1 − 2^−r)^entries_visible`.
pub fn fpr_fingerprint(r: u32, entries_visible: f64) -> f64 {
    assert!((1..=64).contains(&r), "fingerprint bits out of range");
    assert!(entries_visible >= 0.0);
    // `ln_1p(-2^-r)` = ln(1 − 2^-r); miss = (1−2^-r)^E = exp(E·ln(1−2^-r)).
    let miss = (entries_visible * (-(0.5f64.powi(r as i32))).ln_1p()).exp();
    1.0 - miss
}

/// dlCBF FPR: a query inspects `d` buckets of up to `cells` entries; with
/// `n` elements over `d·buckets` buckets, the expected entries visible is
/// `n / buckets` (one subtable's share per candidate, `d` candidates).
pub fn fpr_dlcbf(n: u64, d: u32, buckets: u64, r: u32) -> f64 {
    assert!(d >= 1 && buckets >= 1);
    let visible = n as f64 / buckets as f64;
    fpr_fingerprint(r, visible)
}

/// RCBF FPR: one bucket of expected load `n / buckets` is inspected.
pub fn fpr_rcbf(n: u64, buckets: u64, r: u32) -> f64 {
    assert!(buckets >= 1);
    fpr_fingerprint(r, n as f64 / buckets as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_entries_zero_fpr() {
        assert_eq!(fpr_fingerprint(12, 0.0), 0.0);
    }

    #[test]
    fn monotone_in_entries_and_bits() {
        assert!(fpr_fingerprint(12, 10.0) > fpr_fingerprint(12, 5.0));
        assert!(fpr_fingerprint(12, 10.0) < fpr_fingerprint(8, 10.0));
    }

    #[test]
    fn small_rate_approximation() {
        // For E·2^-r ≪ 1, FPR ≈ E·2^-r.
        let f = fpr_fingerprint(16, 4.0);
        let approx = 4.0 / 65536.0;
        assert!((f - approx).abs() / approx < 0.01, "{f} vs {approx}");
    }

    #[test]
    fn rcbf_model_matches_empirical() {
        use mpcbf_hash::{Hasher128 as _, Murmur3};
        // Mirror the Rcbf hashing (fast_range bucket + top-64 fingerprint)
        // without depending on the variants crate (analysis stays leaf):
        // simulate the collision process directly.
        let (buckets, r, n) = (20_000u64, 12u32, 20_000u64);
        let mut table: Vec<Vec<u32>> = vec![Vec::new(); buckets as usize];
        let slot = |key: u64| {
            let h = Murmur3::hash128(3, &key.to_le_bytes());
            let b = mpcbf_hash::mix::fast_range(h as u64, buckets) as usize;
            let f = ((h >> 64) as u64 & ((1u64 << r) - 1)) as u32;
            (b, f)
        };
        for i in 0..n {
            let (b, f) = slot(i);
            if !table[b].contains(&f) {
                table[b].push(f);
            }
        }
        let trials = 400_000u64;
        let fp = (n..n + trials)
            .filter(|&i| {
                let (b, f) = slot(i);
                table[b].contains(&f)
            })
            .count() as f64;
        let measured = fp / trials as f64;
        let model = fpr_rcbf(n, buckets, r);
        assert!(
            (measured - model).abs() < 0.5 * model + 5e-5,
            "measured {measured} vs model {model}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_bits_panics() {
        let _ = fpr_fingerprint(0, 1.0);
    }
}
