//! MPCBF analysis: Eqs. (4), (5), (8), (9) and the per-word-average forms,
//! §III.B–§III.C.
//!
//! MPCBF replaces each word's flat counter array with an HCBF whose
//! *first-level* sub-vector of `b1` bits is the only part consulted by a
//! membership query, so its FPR has the PCBF shape with `w/4` replaced by
//! `b1`. The improved HCBF (§III.B.3) maximises `b1 = w − k·n_max`, which
//! is where the accuracy win over CBF comes from.

use crate::math::binomial_expectation;
use std::fmt;

/// The first-level sub-vector computed for an FPR model came out below one
/// bit: the word is too small (or too loaded) for the requested
/// configuration, so the model has no defined value.
///
/// Returned by the `try_*` forms ([`try_fpr_mpcbf1_avg`],
/// [`try_fpr_mpcbf_g`], [`try_fpr_mpcbf_g_avg`]); the panicking forms are
/// thin wrappers that turn this error into a panic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct B1Underflow {
    /// The (possibly negative) `b1` value the formula produced.
    pub b1: f64,
    /// Static description of which expression underflowed.
    pub context: &'static str,
}

impl fmt::Display for B1Underflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (b1 = {})", self.context, self.b1)
    }
}

impl std::error::Error for B1Underflow {}

#[inline]
fn word_fp(j: u64, b1: u64, j_hashes: f64, q_hashes: f64) -> f64 {
    let not_set = ((j as f64) * j_hashes * (-(1.0 / b1 as f64)).ln_1p()).exp();
    (1.0 - not_set).powf(q_hashes)
}

/// Eq. (4): FPR of MPCBF-1 with an explicit first-level size `b1`.
pub fn fpr_mpcbf1_b1(n: u64, l: u64, k: u32, b1: u32) -> f64 {
    assert!(l > 0 && b1 > 0);
    binomial_expectation(n, 1.0 / l as f64, |j| {
        word_fp(j, u64::from(b1), f64::from(k), f64::from(k))
    })
}

/// Eq. (5): FPR of MPCBF-1 with the improved HCBF, `b1 = w − k·n_max`.
pub fn fpr_mpcbf1(n: u64, l: u64, w: u32, k: u32, n_max: u32) -> f64 {
    let b1 = w
        .checked_sub(k * n_max)
        .expect("w - k*n_max underflowed: word too small for n_max");
    fpr_mpcbf1_b1(n, l, k, b1)
}

/// The paper's *average* FPR form for MPCBF-1 (below Eq. 5): substitutes
/// the per-word average load `n_avg = n/l` for `n_max`, i.e.
/// `b1 = w − k·n/l`. Optimistic relative to [`fpr_mpcbf1`]; used by the
/// paper for Fig. 5.
///
/// # Panics
/// Panics when the average `b1` falls below one bit; use
/// [`try_fpr_mpcbf1_avg`] to handle that case as a value.
pub fn fpr_mpcbf1_avg(n: u64, l: u64, w: u32, k: u32) -> f64 {
    match try_fpr_mpcbf1_avg(n, l, w, k) {
        Ok(f) => f,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`fpr_mpcbf1_avg`]: returns [`B1Underflow`] instead of
/// panicking when `w − k·n/l < 1` (the configuration is too loaded for the
/// average-form model to be defined).
pub fn try_fpr_mpcbf1_avg(n: u64, l: u64, w: u32, k: u32) -> Result<f64, B1Underflow> {
    let n_avg = n as f64 / l as f64;
    let b1 = (f64::from(w) - f64::from(k) * n_avg).floor();
    if b1 < 1.0 {
        return Err(B1Underflow {
            b1,
            context: "average b1 < 1: word too loaded",
        });
    }
    Ok(fpr_mpcbf1_b1(n, l, k, b1 as u32))
}

/// Eq. (8)/(9): FPR of MPCBF-g with an explicit first-level size `b1`.
///
/// Word occupancy follows `B(gn, 1/l)`; each word is checked with `k/g`
/// hashes and the `g` word checks multiply (independence, as in Eq. 8).
pub fn fpr_mpcbf_g_b1(n: u64, l: u64, k: u32, g: u32, b1: u32) -> f64 {
    assert!(g >= 1 && k >= g, "need k >= g >= 1");
    assert!(l > 0 && b1 > 0);
    if g == 1 {
        return fpr_mpcbf1_b1(n, l, k, b1);
    }
    let kg = f64::from(k) / f64::from(g);
    let per_word = binomial_expectation(g as u64 * n, 1.0 / l as f64, |j| {
        word_fp(j, u64::from(b1), kg, kg)
    });
    per_word.powi(g as i32)
}

/// Eq. (9) with the improved HCBF: `b1 = w − (k/g)·n'_max`.
///
/// # Panics
/// Panics when `b1` falls below one bit; use [`try_fpr_mpcbf_g`] to handle
/// that case as a value.
pub fn fpr_mpcbf_g(n: u64, l: u64, w: u32, k: u32, g: u32, n_max: u32) -> f64 {
    match try_fpr_mpcbf_g(n, l, w, k, g, n_max) {
        Ok(f) => f,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`fpr_mpcbf_g`]: returns [`B1Underflow`] instead of
/// panicking when `w − (k/g)·n_max < 1` (the word cannot host `n_max`
/// slots and still keep a first level).
pub fn try_fpr_mpcbf_g(
    n: u64,
    l: u64,
    w: u32,
    k: u32,
    g: u32,
    n_max: u32,
) -> Result<f64, B1Underflow> {
    let b1 = f64::from(w) - (f64::from(k) / f64::from(g)) * f64::from(n_max);
    if b1 < 1.0 {
        return Err(B1Underflow {
            b1,
            context: "w - (k/g)*n_max < 1: word too small",
        });
    }
    Ok(fpr_mpcbf_g_b1(n, l, k, g, b1.floor() as u32))
}

/// The average-form FPR for MPCBF-g (below Eq. 9): `b1 = w − k·n/l`
/// (each word holds `n'_avg = gn/l` slots of `k/g` hashes each, so the
/// hierarchy consumes `k·n/l` bits on average regardless of `g`).
///
/// # Panics
/// Panics when the average `b1` falls below one bit; use
/// [`try_fpr_mpcbf_g_avg`] to handle that case as a value.
pub fn fpr_mpcbf_g_avg(n: u64, l: u64, w: u32, k: u32, g: u32) -> f64 {
    match try_fpr_mpcbf_g_avg(n, l, w, k, g) {
        Ok(f) => f,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`fpr_mpcbf_g_avg`]: returns [`B1Underflow`] instead
/// of panicking when `w − k·n/l < 1`.
pub fn try_fpr_mpcbf_g_avg(n: u64, l: u64, w: u32, k: u32, g: u32) -> Result<f64, B1Underflow> {
    let b1 = f64::from(w) - f64::from(k) * n as f64 / l as f64;
    if b1 < 1.0 {
        return Err(B1Underflow {
            b1,
            context: "average b1 < 1: word too loaded",
        });
    }
    Ok(fpr_mpcbf_g_b1(n, l, k, g, b1.floor() as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cbf, heuristic, pcbf};

    const N: u64 = 100_000;
    const BIG_M: u64 = 4_000_000;
    const W: u32 = 64;
    const L: u64 = BIG_M / W as u64;

    #[test]
    fn mpcbf1_beats_pcbf1_fig5() {
        // The hierarchy enlarges the membership range (b1 > w/4), so
        // MPCBF-1 must beat PCBF-1 at the same memory.
        let n_max = heuristic::n_max_heuristic(N, L, 1);
        let f_p1 = pcbf::fpr_pcbf1(N, L, W, 3);
        let f_mp1 = fpr_mpcbf1(N, L, W, 3, n_max as u32);
        assert!(f_mp1 < f_p1, "MPCBF-1 {f_mp1} vs PCBF-1 {f_p1}");
    }

    #[test]
    fn mpcbf1_beats_cbf_at_k3_fig7() {
        let n_max = heuristic::n_max_heuristic(N, L, 1);
        let f_cbf = cbf::fpr(N, BIG_M / 4, 3);
        let f_mp1 = fpr_mpcbf1(N, L, W, 3, n_max as u32);
        assert!(f_mp1 < f_cbf, "MPCBF-1 {f_mp1} vs CBF {f_cbf}");
    }

    #[test]
    fn mpcbf2_order_of_magnitude_better_than_cbf() {
        // The headline claim: MPCBF-g (g ≥ 2) cuts FPR by ~an order of
        // magnitude versus CBF at the same memory (abstract, §IV.B).
        let n_max = heuristic::n_max_heuristic(N, L, 2);
        let f_cbf = cbf::fpr(N, BIG_M / 4, 3);
        let f_mp2 = fpr_mpcbf_g(N, L, W, 3, 2, n_max as u32);
        assert!(f_mp2 * 5.0 < f_cbf, "MPCBF-2 {f_mp2} not ≪ CBF {f_cbf}");
    }

    #[test]
    fn g_sweep_is_monotone() {
        // Fig. 5 / §III.C: increasing g decreases the false positive rate.
        let mut prev = f64::INFINITY;
        for g in 1..=3u32 {
            let n_max = heuristic::n_max_heuristic(N, L, g);
            let b1 = (f64::from(W) - f64::from(6) / f64::from(g) * f64::from(n_max as u32)).floor()
                as u32;
            let f = fpr_mpcbf_g_b1(N, L, 6, g, b1);
            assert!(f < prev, "g = {g}: {f} not below {prev}");
            prev = f;
        }
    }

    #[test]
    fn avg_form_is_optimistic() {
        // Average-load b1 ≥ worst-case b1, so the avg FPR is ≤ Eq. (5).
        let n_max = heuristic::n_max_heuristic(N, L, 1) as u32;
        let f_exact = fpr_mpcbf1(N, L, W, 3, n_max);
        let f_avg = fpr_mpcbf1_avg(N, L, W, 3);
        assert!(f_avg <= f_exact, "{f_avg} vs {f_exact}");
    }

    #[test]
    fn wider_words_help_fig5() {
        // Fig. 5: "increasing the word size can decrease the average rate".
        let f32 = {
            let l = BIG_M / 32;
            fpr_mpcbf1_avg(N, l, 32, 3)
        };
        let f64_ = fpr_mpcbf1_avg(N, L, 64, 3);
        assert!(f64_ < f32, "w=64 {f64_} vs w=32 {f32}");
    }

    #[test]
    fn b1_form_matches_g1_specialisation() {
        assert_eq!(fpr_mpcbf_g_b1(N, L, 3, 1, 40), fpr_mpcbf1_b1(N, L, 3, 40));
    }

    #[test]
    fn empty_filter_zero_fpr() {
        assert_eq!(fpr_mpcbf1_b1(0, L, 3, 40), 0.0);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn oversized_nmax_panics() {
        let _ = fpr_mpcbf1(N, L, 16, 4, 10); // 16 - 40 underflows
    }

    #[test]
    fn try_forms_match_panicking_forms_when_defined() {
        assert_eq!(
            try_fpr_mpcbf1_avg(N, L, W, 3),
            Ok(fpr_mpcbf1_avg(N, L, W, 3))
        );
        let n_max = heuristic::n_max_heuristic(N, L, 2) as u32;
        assert_eq!(
            try_fpr_mpcbf_g(N, L, W, 3, 2, n_max),
            Ok(fpr_mpcbf_g(N, L, W, 3, 2, n_max))
        );
        assert_eq!(
            try_fpr_mpcbf_g_avg(N, L, W, 3, 2),
            Ok(fpr_mpcbf_g_avg(N, L, W, 3, 2))
        );
    }

    #[test]
    fn try_forms_report_underflow_as_value() {
        // Regression: these configurations used to assert-panic deep inside
        // a sweep; callers (CLI/bench tables) could not render a "—" cell.
        // w = 16, k = 3, n/l = 25 → b1 = 16 − 75 < 1.
        let err = try_fpr_mpcbf1_avg(N, N / 25, 16, 3).unwrap_err();
        assert!(err.b1 < 1.0);
        assert!(err.to_string().contains("word too loaded"), "{err}");

        // w = 16, k = 4, g = 1, n_max = 10 → b1 = 16 − 40 < 1.
        let err = try_fpr_mpcbf_g(N, L, 16, 4, 1, 10).unwrap_err();
        assert!(err.b1 < 1.0);
        assert!(err.to_string().contains("word too small"), "{err}");

        let err = try_fpr_mpcbf_g_avg(N, N / 25, 16, 3, 2).unwrap_err();
        assert!(err.b1 < 1.0);
    }

    #[test]
    #[should_panic(expected = "word too loaded")]
    fn avg_form_still_panics_on_underflow() {
        // The panicking wrapper must keep its historical message.
        let _ = fpr_mpcbf1_avg(N, N / 25, 16, 3);
    }
}
