//! Criterion micro-benchmarks of the hash substrate — §IV.B observes that
//! hash computation dominates software filter latency, so digest cost is
//! worth tracking per family and key length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpcbf_hash::{DoubleHasher, Fnv, Hasher128, Murmur3, XxHash};
use std::hint::black_box;

fn bench_digests(c: &mut Criterion) {
    let mut g = c.benchmark_group("digest");
    g.sample_size(60);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    for len in [5usize, 8, 16, 64, 256] {
        let data: Vec<u8> = (0..len as u8).collect();
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::new("murmur3_x64_128", len), &data, |b, d| {
            b.iter(|| black_box(Murmur3::hash128(1, d)))
        });
        g.bench_with_input(BenchmarkId::new("xxhash64", len), &data, |b, d| {
            b.iter(|| black_box(XxHash::hash64(1, d)))
        });
        g.bench_with_input(BenchmarkId::new("fnv1a", len), &data, |b, d| {
            b.iter(|| black_box(Fnv::hash128(1, d)))
        });
    }
    g.finish();
}

fn bench_index_stream(c: &mut Criterion) {
    let mut g = c.benchmark_group("double_hashing");
    g.sample_size(60);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let digest = Murmur3::hash128(7, b"index");
    for k in [3u32, 4, 8] {
        g.bench_with_input(BenchmarkId::new("k_indices", k), &k, |b, &k| {
            b.iter(|| {
                let mut dh = DoubleHasher::new(black_box(digest), 1 << 20);
                let mut acc = 0usize;
                for _ in 0..k {
                    acc ^= dh.next_index();
                }
                black_box(acc)
            })
        });
    }
    g.finish();
}

criterion_group!(hash_benches, bench_digests, bench_index_stream);
criterion_main!(hash_benches);
