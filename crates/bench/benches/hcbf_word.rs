//! Criterion micro-benchmarks of the HCBF word codec itself: the
//! popcount-navigated increment/decrement/counter-read paths (§III.B.1),
//! across word widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpcbf_bitvec::{Word, W256};
use mpcbf_core::HcbfWord;
use std::hint::black_box;

fn bench_word_ops<W: Word>(c: &mut Criterion, label: &str, b1: u32) {
    let mut g = c.benchmark_group(format!("hcbf_{label}"));
    g.sample_size(50);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    // A word loaded to half capacity with a spread of counters.
    let make_loaded = || {
        let mut w: HcbfWord<W> = HcbfWord::new();
        let cap = W::BITS - b1;
        let mut i = 0u32;
        while w.total_count() < cap / 2 {
            w.increment(i % b1, b1).unwrap();
            i = i.wrapping_mul(7).wrapping_add(13);
        }
        w
    };

    let loaded = make_loaded();
    g.bench_function(BenchmarkId::new("query", b1), |b| {
        let mut p = 0u32;
        b.iter(|| {
            p = (p + 7) % b1;
            black_box(loaded.query(p))
        })
    });
    g.bench_function(BenchmarkId::new("counter_read", b1), |b| {
        let mut p = 0u32;
        b.iter(|| {
            p = (p + 7) % b1;
            black_box(loaded.counter(p, b1))
        })
    });
    g.bench_function(BenchmarkId::new("increment_decrement", b1), |b| {
        let mut w = make_loaded();
        let mut p = 0u32;
        b.iter(|| {
            p = (p + 7) % b1;
            w.increment(p, b1).unwrap();
            w.decrement(p, b1).unwrap();
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_word_ops::<u32>(c, "u32", 20);
    bench_word_ops::<u64>(c, "u64", 40);
    bench_word_ops::<u128>(c, "u128", 80);
    bench_word_ops::<W256>(c, "w256", 160);
}

criterion_group!(word_benches, benches);
criterion_main!(word_benches);
