//! Criterion benchmark of the reduce-side join with and without filter
//! pushdown (the timing core of Table IV, at bench-friendly scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpcbf_core::{Cbf, Filter, Mpcbf, MpcbfConfig};
use mpcbf_hash::Murmur3;
use mpcbf_mapreduce::join::KeyFilter;
use mpcbf_mapreduce::{reduce_side_join, JoinConfig};
use mpcbf_workloads::patents::{PatentDataset, PatentSpec};
use std::hint::black_box;

fn bench_join(c: &mut Criterion) {
    // ~65k citations, ~1.8k key patents: seconds-scale per iteration set.
    let spec = PatentSpec::default().scaled_down(256);
    let data = PatentDataset::generate(&spec);
    let left: Vec<(u32, u16)> = data.patents.iter().map(|p| (p.id, p.year)).collect();
    let right: Vec<(u32, u32)> = data.citations.iter().map(|c| (c.cited, c.citing)).collect();
    let n_keys = left.len() as u64;
    let big_m = 12 * n_keys;

    let mut cbf = Cbf::<Murmur3>::with_memory(big_m, 3, 77);
    for (k, _) in &left {
        cbf.insert(k).unwrap();
    }
    let mut mp1: Mpcbf<u64> = Mpcbf::new(
        MpcbfConfig::builder()
            .memory_bits(big_m)
            .expected_items(n_keys)
            .hashes(3)
            .seed(77)
            .build()
            .unwrap(),
    );
    for (k, _) in &left {
        let _ = mp1.insert(k);
    }

    let mut g = c.benchmark_group("reduce_side_join");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.throughput(Throughput::Elements(right.len() as u64));
    let cfg = JoinConfig::default();

    let cases: Vec<(&str, Option<&dyn KeyFilter>)> = vec![
        ("no_filter", None),
        ("cbf_pushdown", Some(&cbf)),
        ("mpcbf1_pushdown", Some(&mp1)),
    ];
    for (name, filter) in cases {
        g.bench_with_input(BenchmarkId::new(name, right.len()), &filter, |b, f| {
            b.iter(|| {
                let (rows, stats) = reduce_side_join(&cfg, left.clone(), right.clone(), *f);
                black_box((rows.len(), stats.job.map_output_records))
            })
        });
    }
    g.finish();
}

criterion_group!(mapreduce_benches, bench_join);
criterion_main!(mapreduce_benches);
