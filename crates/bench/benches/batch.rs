//! Batch-pipeline micro-benchmarks: the scalar loop vs the fused batch
//! operations (hash into a reusable plan buffer, then probe/update), at
//! batch sizes 1, 8, 64 and 512 (1 isolates the dispatch overhead — it
//! degrades to the scalar path; 512 shows the asymptote; 8/64 bracket
//! realistic packet-burst sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpcbf_core::{Cbf, CountingFilter, Filter, Mpcbf, MpcbfConfig, PlanBuffer};
use mpcbf_hash::Murmur3;
use std::hint::black_box;

const BIG_M: u64 = 4_000_000;
const N: u64 = 100_000;
const K: u32 = 3;
const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

fn keys(range: std::ops::Range<u64>) -> Vec<[u8; 8]> {
    range.map(|i| i.to_le_bytes()).collect()
}

fn views(keys: &[[u8; 8]]) -> Vec<&[u8]> {
    keys.iter().map(|k| k.as_slice()).collect()
}

fn mpcbf(g: u32) -> Mpcbf<u64, Murmur3> {
    Mpcbf::new(
        MpcbfConfig::builder()
            .memory_bits(BIG_M)
            .expected_items(N)
            .hashes(K)
            .accesses(g)
            .seed(1)
            .build()
            .unwrap(),
    )
}

macro_rules! loaded {
    ($make:expr) => {{
        let mut f = $make;
        for key in keys(0..N) {
            let _ = f.insert_bytes(&key);
        }
        f
    }};
}

fn bench_query_batches(c: &mut Criterion) {
    // 50/50 member/stranger mix so both the hit path and the
    // short-circuit path are exercised.
    let mut mix = keys(0..4_096);
    mix.extend(keys(10_000_000..10_004_096));
    let mix_views = views(&mix);

    let mut g = c.benchmark_group("query_batch");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    macro_rules! bench_filter {
        ($name:expr, $filter:expr) => {{
            let f = $filter;
            for &batch in &BATCH_SIZES {
                g.bench_with_input(
                    BenchmarkId::new(concat!($name, "/scalar"), batch),
                    &batch,
                    |b, &batch| {
                        let mut off = 0;
                        b.iter(|| {
                            off = (off + batch) % (mix_views.len() - batch);
                            let mut hits = 0u32;
                            for k in &mix_views[off..off + batch] {
                                hits += u32::from(f.contains_bytes(k));
                            }
                            black_box(hits)
                        })
                    },
                );
                g.bench_with_input(
                    BenchmarkId::new(concat!($name, "/batch"), batch),
                    &batch,
                    |b, &batch| {
                        let mut off = 0;
                        let mut plans = PlanBuffer::new();
                        b.iter(|| {
                            off = (off + batch) % (mix_views.len() - batch);
                            black_box(
                                f.contains_batch_with(&mix_views[off..off + batch], &mut plans),
                            )
                        })
                    },
                );
            }
        }};
    }

    bench_filter!("CBF", loaded!(Cbf::<Murmur3>::with_memory(BIG_M, K, 1)));
    bench_filter!("MPCBF-1", loaded!(mpcbf(1)));
    bench_filter!("MPCBF-2", loaded!(mpcbf(2)));
    g.finish();
}

fn bench_update_batches(c: &mut Criterion) {
    let churn = keys(50_000_000..50_000_512);
    let churn_views = views(&churn);

    let mut g = c.benchmark_group("update_batch");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    macro_rules! bench_filter {
        ($name:expr, $filter:expr) => {{
            let mut f = $filter;
            for &batch in &BATCH_SIZES {
                g.bench_with_input(
                    BenchmarkId::new(concat!($name, "/scalar"), batch),
                    &batch,
                    |b, &batch| {
                        b.iter(|| {
                            for k in &churn_views[..batch] {
                                f.insert_bytes(k).expect("insert");
                            }
                            for k in &churn_views[..batch] {
                                f.remove_bytes(k).expect("remove");
                            }
                        })
                    },
                );
                g.bench_with_input(
                    BenchmarkId::new(concat!($name, "/batch"), batch),
                    &batch,
                    |b, &batch| {
                        let mut plans = PlanBuffer::new();
                        b.iter(|| {
                            black_box(f.insert_batch_with(&churn_views[..batch], &mut plans));
                            black_box(f.remove_batch_with(&churn_views[..batch], &mut plans));
                        })
                    },
                );
            }
        }};
    }

    bench_filter!("CBF", loaded!(Cbf::<Murmur3>::with_memory(BIG_M, K, 2)));
    bench_filter!("MPCBF-1", loaded!(mpcbf(1)));
    bench_filter!("MPCBF-2", loaded!(mpcbf(2)));
    g.finish();
}

criterion_group!(benches, bench_query_batches, bench_update_batches);
criterion_main!(benches);
