//! Criterion benchmarks of the concurrent MPCBF variants under
//! single-thread and contended multi-thread mixes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpcbf_concurrent::{AtomicMpcbf, ShardedMpcbf};
use mpcbf_core::MpcbfConfig;
use mpcbf_hash::Murmur3;
use std::hint::black_box;

fn config() -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(4_000_000)
        .expected_items(50_000)
        .hashes(3)
        .seed(13)
        .build()
        .unwrap()
}

fn bench_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("concurrent_single_thread");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    let sharded: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(config(), 256);
    let atomic: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(config());
    for i in 0..10_000u64 {
        sharded.insert(&i).unwrap();
        atomic.insert(&i).unwrap();
    }

    g.bench_function("sharded_query", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 20_000;
            black_box(sharded.contains(&i))
        })
    });
    g.bench_function("atomic_query", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 20_000;
            black_box(atomic.contains(&i))
        })
    });
    g.bench_function("sharded_insert_remove", |b| {
        let mut i = 1_000_000u64;
        b.iter(|| {
            i += 1;
            sharded.insert(&i).unwrap();
            sharded.remove(&i).unwrap();
        })
    });
    g.bench_function("atomic_insert_remove", |b| {
        let mut i = 2_000_000u64;
        b.iter(|| {
            i += 1;
            atomic.insert(&i).unwrap();
            atomic.remove(&i).unwrap();
        })
    });
    g.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("concurrent_contended");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    let threads = 4usize;
    let ops = 20_000u64;
    g.throughput(Throughput::Elements(ops * threads as u64));

    g.bench_with_input(
        BenchmarkId::new("sharded_mixed", threads),
        &threads,
        |b, &t| {
            b.iter(|| {
                let f: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(config(), 256);
                crossbeam::scope(|s| {
                    for tid in 0..t as u64 {
                        let f = &f;
                        s.spawn(move |_| {
                            for i in 0..ops {
                                let k = (tid << 32) | i;
                                f.insert(&k).unwrap();
                                black_box(f.contains(&k));
                                f.remove(&k).unwrap();
                            }
                        });
                    }
                })
                .unwrap();
            })
        },
    );

    g.bench_with_input(
        BenchmarkId::new("atomic_mixed", threads),
        &threads,
        |b, &t| {
            b.iter(|| {
                let f: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(config());
                crossbeam::scope(|s| {
                    for tid in 0..t as u64 {
                        let f = &f;
                        s.spawn(move |_| {
                            for i in 0..ops {
                                let k = (tid << 32) | i;
                                f.insert(&k).unwrap();
                                black_box(f.contains(&k));
                                f.remove(&k).unwrap();
                            }
                        });
                    }
                })
                .unwrap();
            })
        },
    );
    g.finish();
}

criterion_group!(concurrent_benches, bench_single_thread, bench_contended);
criterion_main!(concurrent_benches);
