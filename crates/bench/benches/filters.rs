//! Criterion micro-benchmarks: per-operation latency of every filter
//! (the microscopic version of Fig. 8 and Tables I–II).
//!
//! Groups: `query_member`, `query_nonmember` (short-circuit path),
//! `insert`, `remove` — each across CBF, PCBF-1/2, MPCBF-1/2, dlCBF,
//! VI-CBF at the same 4 Mb memory budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpcbf_core::{Cbf, CountingFilter, Filter, Mpcbf, MpcbfConfig, Pcbf};
use mpcbf_hash::Murmur3;
use mpcbf_variants::{DlCbf, ViCbf};
use std::hint::black_box;

const BIG_M: u64 = 4_000_000;
const N: u64 = 100_000;
const K: u32 = 3;

fn keys(range: std::ops::Range<u64>) -> Vec<[u8; 8]> {
    range.map(|i| i.to_le_bytes()).collect()
}

/// Builds each contender pre-loaded with N members.
macro_rules! loaded {
    ($make:expr) => {{
        let mut f = $make;
        for key in keys(0..N) {
            let _ = f.insert_bytes(&key);
        }
        f
    }};
}

fn mpcbf(g: u32) -> Mpcbf<u64, Murmur3> {
    Mpcbf::new(
        MpcbfConfig::builder()
            .memory_bits(BIG_M)
            .expected_items(N)
            .hashes(K)
            .accesses(g)
            .seed(1)
            .build()
            .unwrap(),
    )
}

fn bench_queries(c: &mut Criterion) {
    let members = keys(0..10_000);
    let strangers = keys(10_000_000..10_010_000);

    macro_rules! bench_filter {
        ($group:expr, $name:expr, $filter:expr) => {{
            let f = $filter;
            $group.bench_with_input(BenchmarkId::new($name, "member"), &members, |b, ks| {
                let mut i = 0;
                b.iter(|| {
                    i = (i + 1) % ks.len();
                    black_box(f.contains_bytes(&ks[i]))
                })
            });
            $group.bench_with_input(BenchmarkId::new($name, "nonmember"), &strangers, |b, ks| {
                let mut i = 0;
                b.iter(|| {
                    i = (i + 1) % ks.len();
                    black_box(f.contains_bytes(&ks[i]))
                })
            });
        }};
    }

    let mut g = c.benchmark_group("query");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    bench_filter!(g, "CBF", loaded!(Cbf::<Murmur3>::with_memory(BIG_M, K, 1)));
    bench_filter!(
        g,
        "PCBF-1",
        loaded!(Pcbf::<Murmur3>::with_memory(BIG_M, 64, K, 1, 1))
    );
    bench_filter!(
        g,
        "PCBF-2",
        loaded!(Pcbf::<Murmur3>::with_memory(BIG_M, 64, K, 2, 1))
    );
    bench_filter!(g, "MPCBF-1", loaded!(mpcbf(1)));
    bench_filter!(g, "MPCBF-2", loaded!(mpcbf(2)));
    bench_filter!(
        g,
        "dlCBF",
        loaded!(DlCbf::<Murmur3>::with_memory(BIG_M, 12, 1))
    );
    bench_filter!(
        g,
        "VI-CBF",
        loaded!(ViCbf::<Murmur3>::with_memory(BIG_M, K, 4, 1))
    );
    g.finish();
}

fn bench_updates(c: &mut Criterion) {
    let mut g = c.benchmark_group("update");
    g.sample_size(30);
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    macro_rules! bench_churn {
        ($name:expr, $filter:expr) => {{
            let mut f = $filter;
            let churn = keys(50_000_000..50_010_000);
            g.bench_function(BenchmarkId::new($name, "insert_remove"), |b| {
                let mut i = 0;
                b.iter(|| {
                    i = (i + 1) % churn.len();
                    f.insert_bytes(&churn[i]).expect("insert");
                    f.remove_bytes(&churn[i]).expect("remove");
                })
            });
        }};
    }

    bench_churn!("CBF", loaded!(Cbf::<Murmur3>::with_memory(BIG_M, K, 2)));
    bench_churn!(
        "PCBF-1",
        loaded!(Pcbf::<Murmur3>::with_memory(BIG_M, 64, K, 1, 2))
    );
    bench_churn!("MPCBF-1", loaded!(mpcbf(1)));
    bench_churn!("MPCBF-2", loaded!(mpcbf(2)));
    bench_churn!(
        "dlCBF",
        loaded!(DlCbf::<Murmur3>::with_memory(BIG_M, 12, 2))
    );
    bench_churn!(
        "VI-CBF",
        loaded!(ViCbf::<Murmur3>::with_memory(BIG_M, K, 4, 2))
    );
    g.finish();
}

criterion_group!(benches, bench_queries, bench_updates);
criterion_main!(benches);
