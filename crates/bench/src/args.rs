//! Minimal flag parsing shared by the experiment binaries.
//!
//! Supported flags (all optional):
//!
//! * `--scale N` — divide workload sizes by `N` (default 1 = paper scale);
//! * `--trials N` — override the number of averaged trials;
//! * `--out DIR` — directory for CSV output (default `results/`);
//! * `--quiet` — suppress the human-readable table (CSV still written);
//! * `--faults SEED` — run the seeded fault-injection campaign instead of
//!   (or before) the normal workload (honoured by `stress`);
//! * `--drill-matrix` — run the fault campaign over every seed in
//!   `mpcbf_workloads::DRILL_SEEDS` (the CI kill-point drill matrix,
//!   honoured by `stress`);
//! * `--telemetry` — run the metered telemetry validation instead of the
//!   normal workload: emits `BENCH_telemetry.json` plus a Prometheus text
//!   page (honoured by `stress`);
//! * `--gate` — regression-gate mode (honoured by `bench_batch`): measure,
//!   compare against the recorded baseline JSON instead of overwriting it,
//!   and exit non-zero on a regression;
//! * `--ramp` — run the elastic capacity-ramp drill instead of the normal
//!   workload (honoured by `stress`): a 10x key ramp against the elastic
//!   pool, checking zero false negatives and the analytic FPR envelope at
//!   every phase, including mid-compaction.

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Workload-size divisor.
    pub scale: u64,
    /// Trial-count override.
    pub trials: Option<usize>,
    /// Output directory for CSV files.
    pub out_dir: String,
    /// Suppress stdout tables.
    pub quiet: bool,
    /// Fault-injection campaign seed (`--faults SEED`), if requested.
    pub faults: Option<u64>,
    /// Run the fault campaign over every shared drill seed
    /// (`--drill-matrix`).
    pub drill_matrix: bool,
    /// Run the telemetry validation harness (`--telemetry`).
    pub telemetry: bool,
    /// Regression-gate mode (`--gate`): compare against the recorded
    /// baseline instead of regenerating it; exit non-zero on regression.
    pub gate: bool,
    /// Run the elastic capacity-ramp drill (`--ramp`).
    pub ramp: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            scale: 1,
            trials: None,
            out_dir: "results".to_string(),
            quiet: false,
            faults: None,
            drill_matrix: false,
            telemetry: false,
            gate: false,
            ramp: false,
        }
    }
}

impl Args {
    /// Parses `std::env::args()`, exiting with a usage message on error.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // parsing, not collection building
    pub fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let mut it = iter.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--scale" => {
                    args.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&s| s >= 1)
                        .unwrap_or_else(|| usage("--scale needs a positive integer"))
                }
                "--trials" => {
                    args.trials = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&t| t >= 1)
                            .unwrap_or_else(|| usage("--trials needs a positive integer")),
                    )
                }
                "--out" => {
                    args.out_dir = it
                        .next()
                        .unwrap_or_else(|| usage("--out needs a directory"))
                }
                "--faults" => {
                    args.faults = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--faults needs a seed (u64)")),
                    )
                }
                "--drill-matrix" => args.drill_matrix = true,
                "--telemetry" => args.telemetry = true,
                "--gate" => args.gate = true,
                "--ramp" => args.ramp = true,
                "--quiet" => args.quiet = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }

    /// Applies the scale divisor to a size.
    pub fn scaled(&self, n: u64) -> u64 {
        (n / self.scale).max(1)
    }

    /// Trials to run, given an experiment default.
    pub fn trials_or(&self, default: usize) -> usize {
        self.trials.unwrap_or(default)
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--scale N] [--trials N] [--out DIR] [--quiet] [--faults SEED] \
         [--drill-matrix] [--telemetry] [--gate] [--ramp]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::from_iter(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, 1);
        assert_eq!(a.trials, None);
        assert_eq!(a.out_dir, "results");
        assert!(!a.quiet);
    }

    #[test]
    fn all_flags() {
        let a = parse(&[
            "--scale", "10", "--trials", "3", "--out", "/tmp/x", "--quiet", "--faults", "42",
        ]);
        assert_eq!(a.scale, 10);
        assert_eq!(a.trials, Some(3));
        assert_eq!(a.out_dir, "/tmp/x");
        assert!(a.quiet);
        assert_eq!(a.faults, Some(42));
    }

    #[test]
    fn faults_defaults_to_off() {
        assert_eq!(parse(&[]).faults, None);
        assert_eq!(parse(&["--faults", "0"]).faults, Some(0));
    }

    #[test]
    fn drill_matrix_flag() {
        assert!(!parse(&[]).drill_matrix);
        assert!(parse(&["--drill-matrix"]).drill_matrix);
    }

    #[test]
    fn ramp_flag() {
        assert!(!parse(&[]).ramp);
        assert!(parse(&["--ramp"]).ramp);
    }

    #[test]
    fn telemetry_flag() {
        assert!(!parse(&[]).telemetry);
        assert!(parse(&["--telemetry"]).telemetry);
    }

    #[test]
    fn gate_flag() {
        assert!(!parse(&[]).gate);
        assert!(parse(&["--gate"]).gate);
    }

    #[test]
    fn scaled_floors_at_one() {
        let a = parse(&["--scale", "1000"]);
        assert_eq!(a.scaled(100), 1);
        assert_eq!(a.scaled(100_000), 100);
    }

    #[test]
    fn trials_or_default() {
        assert_eq!(parse(&[]).trials_or(10), 10);
        assert_eq!(parse(&["--trials", "2"]).trials_or(10), 2);
    }
}
