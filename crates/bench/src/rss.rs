//! Peak-RSS measurement for the build benchmarks.
//!
//! Linux exposes a per-process resident-set high-water mark (`VmHWM` in
//! `/proc/self/status`) and a way to reset it (writing `5` to
//! `/proc/self/clear_refs`), which together give per-phase peak-memory
//! attribution inside one process: reset, run the contender, read the
//! mark. Everything here degrades to `None` off Linux or when procfs is
//! unavailable — benchmarks report the number when they can and omit it
//! otherwise, never failing the run over it.

use std::fs;

/// Reads a `kB` field from `/proc/self/status`, in bytes.
fn status_kb(field: &str) -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Peak resident set size (high-water mark) in bytes, if measurable.
pub fn peak_rss_bytes() -> Option<u64> {
    status_kb("VmHWM:")
}

/// Current resident set size in bytes, if measurable.
pub fn current_rss_bytes() -> Option<u64> {
    status_kb("VmRSS:")
}

/// Resets the peak-RSS high-water mark to the current RSS, so the next
/// [`peak_rss_bytes`] reading attributes peak memory to the work done
/// since this call. Returns `false` when the kernel doesn't support it
/// (readings then cover the whole process lifetime).
pub fn reset_peak_rss() -> bool {
    fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Bytes as mebibytes for report rows.
pub fn bytes_to_mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_allocation() {
        // On Linux this must observe a ~64 MiB spike; elsewhere the
        // helpers return None and there is nothing to check.
        let Some(before) = peak_rss_bytes() else {
            return;
        };
        assert!(before > 0);
        reset_peak_rss();
        let spike = vec![1u8; 64 << 20];
        // Touch every page so it becomes resident.
        let sum: u64 = spike.iter().step_by(4096).map(|&b| u64::from(b)).sum();
        assert_eq!(sum, (64 << 20) / 4096);
        let after = peak_rss_bytes().expect("procfs was readable above");
        assert!(
            after >= 48 << 20,
            "peak {after} should reflect a 64 MiB spike"
        );
    }

    #[test]
    fn mib_conversion() {
        assert_eq!(bytes_to_mib(64 << 20), 64.0);
    }
}
