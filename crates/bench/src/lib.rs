//! The experiment harness behind every figure and table of the paper.
//!
//! Each binary in `src/bin/` regenerates one paper artifact (see
//! `DESIGN.md`'s experiment index); this library holds what they share:
//!
//! * [`runner`] — drives any [`CountingFilter`] through the paper's
//!   protocol (insert the test set → churn → query stream) while
//!   collecting false-positive counts, metered access statistics and wall
//!   times;
//! * [`report`] — aligned-table printing plus CSV output into `results/`;
//! * [`args`] — the tiny flag parser shared by the binaries
//!   (`--scale N`, `--trials N`, `--out DIR`);
//! * [`telemetry`] — the metered validation harness behind `--telemetry`:
//!   replays the synthetic workload with a [`mpcbf_telemetry::Telemetry`]
//!   sink and checks measured mean accesses against Table II/III.
//!
//! Binaries default to the paper's full parameters; pass `--scale N` to
//! divide workload sizes by `N` for a quick look. Run with `--release` —
//! the timing experiments are meaningless in a debug build.
//!
//! [`CountingFilter`]: mpcbf_core::CountingFilter

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod report;
pub mod rss;
pub mod runner;
pub mod suite;
pub mod telemetry;

pub use args::Args;
pub use report::{write_csv, Table};
pub use runner::{measure_workload, FilterMeasurement, Workload};
pub use suite::{average, run_suite, AvgRow, Contender};
pub use telemetry::{run_validation, TelemetryValidation, VariantRow};
