//! The contender suite: builds the paper's five filters at equal memory
//! and runs them over a workload, averaging across trials
//! (§IV.A: "we generate ten different test sets and query sets, perform
//! the experiments over each one of them, and average the results").

use crate::runner::{measure_workload, FilterMeasurement, Workload};
use mpcbf_core::{Cbf, ConfigError, Mpcbf, MpcbfConfig, Pcbf};
use mpcbf_hash::{Key, Murmur3};
use std::hash::Hash;

/// A filter configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contender {
    /// Standard CBF (4-bit counters).
    Cbf,
    /// PCBF-g.
    Pcbf {
        /// Memory accesses per operation.
        g: u32,
    },
    /// MPCBF-g over 64-bit words.
    Mpcbf {
        /// Memory accesses per operation.
        g: u32,
    },
}

impl Contender {
    /// The paper's five-way comparison set (§IV.B).
    pub fn paper_five() -> Vec<Contender> {
        vec![
            Contender::Cbf,
            Contender::Pcbf { g: 1 },
            Contender::Pcbf { g: 2 },
            Contender::Mpcbf { g: 1 },
            Contender::Mpcbf { g: 2 },
        ]
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Contender::Cbf => "CBF".to_string(),
            Contender::Pcbf { g } => format!("PCBF-{g}"),
            Contender::Mpcbf { g } => format!("MPCBF-{g}"),
        }
    }

    /// Runs this contender over `workload` at `big_m` bits of memory with
    /// `k` hashes (w = 64 throughout, as in the paper's experiments).
    pub fn run<K>(
        &self,
        big_m: u64,
        n_expected: u64,
        k: u32,
        seed: u64,
        workload: &Workload<K>,
    ) -> Result<FilterMeasurement, ConfigError>
    where
        K: Key + Eq + Hash + Clone,
    {
        const W: u32 = 64;
        let name = self.name();
        Ok(match self {
            Contender::Cbf => {
                let mut f = Cbf::<Murmur3>::with_memory(big_m, k, seed);
                measure_workload(&name, &mut f, workload)
            }
            Contender::Pcbf { g } => {
                let mut f = Pcbf::<Murmur3>::with_memory(big_m, W, k, *g, seed);
                measure_workload(&name, &mut f, workload)
            }
            Contender::Mpcbf { g } => {
                let config = MpcbfConfig::builder()
                    .memory_bits(big_m)
                    .expected_items(n_expected)
                    .hashes(k)
                    .accesses(*g)
                    .word_bits(W)
                    .seed(seed)
                    .build()?;
                let mut f: Mpcbf<u64> = Mpcbf::new(config);
                measure_workload(&name, &mut f, workload)
            }
        })
    }
}

/// Trial-averaged results for one contender.
#[derive(Debug, Clone)]
pub struct AvgRow {
    /// Contender name.
    pub name: String,
    /// Mean false-positive rate.
    pub fpr: f64,
    /// Mean memory accesses per query.
    pub query_accesses: f64,
    /// Mean access bandwidth (hash bits) per query.
    pub query_bits: f64,
    /// Mean memory accesses per update (inserts + deletes).
    pub update_accesses: f64,
    /// Mean access bandwidth per update.
    pub update_bits: f64,
    /// Mean wall time of the unmetered query pass, in milliseconds.
    pub query_ms: f64,
    /// Total refused inserts across trials (word overflows).
    pub skipped_inserts: u64,
}

/// Averages per-trial measurements (all for the same contender).
pub fn average(rows: &[FilterMeasurement]) -> AvgRow {
    assert!(!rows.is_empty());
    let n = rows.len() as f64;
    let mean = |f: &dyn Fn(&FilterMeasurement) -> f64| rows.iter().map(f).sum::<f64>() / n;
    AvgRow {
        name: rows[0].name.clone(),
        fpr: mean(&|r| r.fpr),
        query_accesses: mean(&|r| r.stats.queries.mean_accesses()),
        query_bits: mean(&|r| r.stats.queries.mean_hash_bits()),
        update_accesses: mean(&|r| r.stats.updates().mean_accesses()),
        update_bits: mean(&|r| r.stats.updates().mean_hash_bits()),
        query_ms: mean(&|r| r.query_wall.as_secs_f64() * 1e3),
        skipped_inserts: rows.iter().map(|r| r.skipped_inserts).sum(),
    }
}

/// Runs every contender over per-trial workloads and averages.
///
/// `make_workload(trial)` must generate the trial's workload (different
/// seed per trial); contenders whose configuration is infeasible at this
/// memory (e.g. MPCBF with an overloaded word) are skipped.
pub fn run_suite<K, F>(
    contenders: &[Contender],
    big_m: u64,
    n_expected: u64,
    k: u32,
    trials: usize,
    mut make_workload: F,
) -> Vec<AvgRow>
where
    K: Key + Eq + Hash + Clone,
    F: FnMut(usize) -> Workload<K>,
{
    let workloads: Vec<Workload<K>> = (0..trials).map(&mut make_workload).collect();
    let mut out = Vec::new();
    for c in contenders {
        let mut rows = Vec::new();
        let mut feasible = true;
        for (trial, w) in workloads.iter().enumerate() {
            match c.run(big_m, n_expected, k, 0xBEEF + trial as u64, w) {
                Ok(m) => rows.push(m),
                Err(e) => {
                    eprintln!("note: {} infeasible at M={big_m}: {e}", c.name());
                    feasible = false;
                    break;
                }
            }
        }
        if feasible && !rows.is_empty() {
            out.push(average(&rows));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Workload;

    fn tiny_workload(trial: usize) -> Workload<u64> {
        let base = trial as u64 * 1_000_000;
        Workload::without_churn((base..base + 500).collect(), (base..base + 2_000).collect())
    }

    #[test]
    fn paper_five_has_five() {
        assert_eq!(Contender::paper_five().len(), 5);
    }

    #[test]
    fn suite_runs_all_contenders() {
        let rows = run_suite(&Contender::paper_five(), 200_000, 500, 3, 2, tiny_workload);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.query_accesses >= 1.0, "{}: {}", r.name, r.query_accesses);
            assert!(r.query_bits > 0.0);
        }
        // Access ordering: MPCBF-1 and PCBF-1 touch one word per query.
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        assert!(get("PCBF-1").query_accesses <= 1.0 + 1e-9);
        assert!(get("MPCBF-1").query_accesses <= 1.0 + 1e-9);
        assert!(get("CBF").query_accesses > get("MPCBF-1").query_accesses);
    }

    #[test]
    fn infeasible_contender_is_skipped() {
        // 2 kb of memory with 100k expected items: MPCBF infeasible.
        let rows = run_suite(
            &[Contender::Mpcbf { g: 1 }, Contender::Cbf],
            2_048,
            100_000,
            3,
            1,
            tiny_workload,
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "CBF");
    }

    #[test]
    fn average_is_componentwise_mean() {
        let rows = vec![tiny_measurement(0.1, 1.0), tiny_measurement(0.3, 3.0)];
        let avg = average(&rows);
        assert!((avg.fpr - 0.2).abs() < 1e-12);
    }

    fn tiny_measurement(fpr: f64, _x: f64) -> FilterMeasurement {
        FilterMeasurement {
            name: "t".into(),
            fpr,
            false_positives: 0,
            negatives: 0,
            stats: Default::default(),
            insert_wall: Default::default(),
            churn_wall: Default::default(),
            query_wall: Default::default(),
            skipped_inserts: 0,
            skipped_deletes: 0,
            memory_bits: 0,
        }
    }
}
