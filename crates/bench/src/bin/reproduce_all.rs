//! Runs every figure/table/ablation binary in sequence, collecting their
//! CSV outputs under one results directory.
//!
//! ```text
//! cargo run --release -p mpcbf-bench --bin reproduce_all            # paper scale
//! cargo run --release -p mpcbf-bench --bin reproduce_all -- --scale 10
//! ```
//!
//! Each experiment is a sibling binary in the same target directory, so
//! this driver simply re-invokes them with the shared flags.

use mpcbf_bench::Args;
use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "fig02_pcbf_fpr",
    "fig05_mpcbf_fpr",
    "fig06_overflow",
    "fig07_fpr_synthetic",
    "fig08_query_time",
    "fig09_optimal_k",
    "fig10_fpr_optimal_k",
    "fig11_query_overhead",
    "fig12_fpr_traces",
    "table1_query_overhead",
    "table2_update_overhead",
    "table3_trace_overhead",
    "table4_mapreduce_join",
    "ablation_hierarchy",
    "ablation_nmax",
    "ablation_variants",
    "ablation_hash_families",
    "ablation_word_width",
    "ablation_concurrent",
    "ablation_hardware_model",
];

fn main() {
    let args = Args::parse();
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("binary directory");

    let grand_start = Instant::now();
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        let path = dir.join(exp);
        if !path.exists() {
            eprintln!("!! {exp}: binary not built (run with --release --bins)");
            failures.push(*exp);
            continue;
        }
        println!("\n#### running {exp} (scale {}) ####", args.scale);
        let start = Instant::now();
        let mut cmd = Command::new(&path);
        cmd.arg("--scale")
            .arg(args.scale.to_string())
            .arg("--out")
            .arg(&args.out_dir);
        if let Some(t) = args.trials {
            cmd.arg("--trials").arg(t.to_string());
        }
        if args.quiet {
            cmd.arg("--quiet");
        }
        match cmd.status() {
            Ok(s) if s.success() => {
                println!(
                    "#### {exp} done in {:.1}s ####",
                    start.elapsed().as_secs_f64()
                );
            }
            Ok(s) => {
                eprintln!("!! {exp} exited with {s}");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!("!! {exp} failed to start: {e}");
                failures.push(*exp);
            }
        }
    }

    println!(
        "\n== reproduce_all finished in {:.1}s; CSVs in {}/ ==",
        grand_start.elapsed().as_secs_f64(),
        args.out_dir
    );
    if !failures.is_empty() {
        eprintln!("failed experiments: {failures:?}");
        std::process::exit(1);
    }
}
