//! Table III: processing overhead with k = 3 on the IP-trace workload —
//! query and update memory accesses and access bandwidth, per structure.
//!
//! The trace's query stream is ~90 % member hits (hot flows repeat), so
//! query short-circuiting saves less than on the synthetic 80/20 mix —
//! the paper measures CBF at 2.1 accesses/query here and MPCBF-2 at 1.5.

use mpcbf_bench::report::fixed;
use mpcbf_bench::runner::Workload;
use mpcbf_bench::{run_suite, Args, Contender, Table};
use mpcbf_workloads::flowtrace::{FlowTrace, FlowTraceSpec};

fn main() {
    let args = Args::parse();
    let spec = FlowTraceSpec::default().scaled_down(args.scale);
    let n = spec.test_set as u64;
    let big_m = 12_000_000u64 / args.scale;

    eprintln!(
        "generating trace: {} records, {} unique flows ...",
        spec.total_records, spec.unique_flows
    );
    let trace = FlowTrace::generate(&spec);

    let rows = run_suite(&Contender::paper_five(), big_m, n, 3, 1, |_| Workload {
        inserts: trace.test_set.clone(),
        churn: trace.churn.clone(),
        queries: trace.records.clone(),
    });

    let mut t = Table::new(
        &format!(
            "Table III — processing overhead on IP traces (k = 3, M = {} Mb)",
            big_m as f64 / 1e6
        ),
        &[
            "structure",
            "query accesses",
            "query bandwidth (bits)",
            "update accesses",
            "update bandwidth (bits)",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            fixed(r.query_accesses, 1),
            fixed(r.query_bits, 0),
            fixed(r.update_accesses, 1),
            fixed(r.update_bits, 0),
        ]);
    }
    t.finish(&args.out_dir, "table3_trace_overhead", args.quiet);
}
