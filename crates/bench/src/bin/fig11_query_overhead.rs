//! Figure 11: query overhead when every filter runs at its optimal k —
//! (a) memory accesses per query, (b) access bandwidth per query.
//!
//! To reproduce: CBF's per-query accesses climb with its optimal k
//! (roughly 5–10 over the memory range, fractional because membership
//! checks short-circuit at the first zero counter), while MPCBF-1/2/3
//! hold constant ≈1.0 / ≈1.8 / ≈2.6 accesses regardless of memory.

use mpcbf_analysis::{optimal_k_cbf, optimal_k_mpcbf};
use mpcbf_bench::report::fixed;
use mpcbf_bench::runner::Workload;
use mpcbf_bench::{run_suite, Args, Contender, Table};
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};

fn main() {
    let args = Args::parse();
    let trials = args.trials_or(3);
    let n = args.scaled(100_000);
    let w = 64u32;

    let mut acc = Table::new(
        &format!("Fig. 11a — memory accesses per query at optimal k (n = {n})"),
        &["memory (Mb)", "CBF", "MPCBF-1", "MPCBF-2", "MPCBF-3"],
    );
    let mut bw = Table::new(
        &format!("Fig. 11b — access bandwidth (bits) per query at optimal k (n = {n})"),
        &["memory (Mb)", "CBF", "MPCBF-1", "MPCBF-2", "MPCBF-3"],
    );

    for mb in [4.0f64, 5.0, 6.0, 7.0, 8.0] {
        let big_m = ((mb * 1e6) as u64) / args.scale;
        let make_workload = |trial: usize| {
            let spec = SyntheticSpec {
                test_set: n as usize,
                queries: args.scaled(1_000_000) as usize,
                churn_per_period: args.scaled(20_000) as usize,
                seed: 0xF11 + trial as u64 * 17,
                ..SyntheticSpec::default()
            };
            let wl = SyntheticWorkload::generate(&spec);
            Workload {
                inserts: wl.test_set,
                churn: wl.churn,
                queries: wl.queries,
            }
        };

        let mut acc_cells = vec![format!("{mb:.1}")];
        let mut bw_cells = vec![format!("{mb:.1}")];

        let k_cbf = optimal_k_cbf(big_m, 4, n);
        let rows = run_suite(&[Contender::Cbf], big_m, n, k_cbf, trials, make_workload);
        match rows.first() {
            Some(r) => {
                acc_cells.push(fixed(r.query_accesses, 1));
                bw_cells.push(fixed(r.query_bits, 0));
            }
            None => {
                acc_cells.push("-".into());
                bw_cells.push("-".into());
            }
        }

        for g in 1..=3u32 {
            match optimal_k_mpcbf(big_m, w, n, g, 16) {
                Some(opt) => {
                    let rows = run_suite(
                        &[Contender::Mpcbf { g }],
                        big_m,
                        n,
                        opt.k,
                        trials,
                        make_workload,
                    );
                    match rows.first() {
                        Some(r) => {
                            acc_cells.push(fixed(r.query_accesses, 1));
                            bw_cells.push(fixed(r.query_bits, 0));
                        }
                        None => {
                            acc_cells.push("-".into());
                            bw_cells.push("-".into());
                        }
                    }
                }
                None => {
                    acc_cells.push("-".into());
                    bw_cells.push("-".into());
                }
            }
        }
        acc.row(acc_cells);
        bw.row(bw_cells);
    }
    acc.finish(&args.out_dir, "fig11a_query_accesses", args.quiet);
    bw.finish(&args.out_dir, "fig11b_query_bandwidth", args.quiet);
}
