//! Differential stress harness: drives every counting filter with a
//! randomized insert/remove/query/churn/codec mix against an exact
//! multiset oracle, for as many rounds as you give it.
//!
//! ```text
//! cargo run --release -p mpcbf-bench --bin stress              # ~1 M ops
//! cargo run --release -p mpcbf-bench --bin stress -- --scale 10  # quick
//! ```
//!
//! This is the "leave it running" layer above the proptest suites: no
//! shrinking, but far more operations, periodic invariant sweeps, and
//! codec round-trips injected mid-stream (encode → decode → continue),
//! which property tests don't interleave.

use mpcbf_bench::Args;
use mpcbf_core::{Cbf, CountingFilter, Mpcbf, MpcbfConfig};
use mpcbf_hash::Murmur3;
use mpcbf_variants::{DlCbf, Rcbf, ViCbf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const KEY_SPACE: u64 = 5_000;

struct Driver {
    oracle: HashMap<u64, u32>,
    rng: StdRng,
    ops: u64,
    removes_rejected: u64,
    inserts_refused: u64,
}

impl Driver {
    fn new(seed: u64) -> Self {
        Driver {
            oracle: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            ops: 0,
            removes_rejected: 0,
            inserts_refused: 0,
        }
    }

    /// One random operation; panics on any contract violation.
    fn step<F: CountingFilter>(&mut self, f: &mut F) {
        self.ops += 1;
        let key = self.rng.gen_range(0..KEY_SPACE);
        match self.rng.gen_range(0..10u32) {
            // 40% inserts
            0..=3 => {
                if f.insert(&key).is_ok() {
                    *self.oracle.entry(key).or_insert(0) += 1;
                } else {
                    self.inserts_refused += 1;
                }
            }
            // 30% removes of live keys only (the supported contract)
            4..=6 => {
                if self.oracle.get(&key).copied().unwrap_or(0) > 0 {
                    f.remove(&key)
                        .unwrap_or_else(|e| panic!("remove of live key {key} failed: {e}"));
                    *self.oracle.get_mut(&key).unwrap() -= 1;
                } else {
                    // Absent key: refusal is the expected outcome; a
                    // (false-positive) success would void the oracle, so
                    // compensate by treating it as an insert-then-remove.
                    if f.remove(&key).is_ok() {
                        self.removes_rejected += 1;
                        let _ = f.insert(&key);
                    }
                }
            }
            // 30% queries
            _ => {
                let live = self.oracle.get(&key).copied().unwrap_or(0) > 0;
                let claimed = f.contains(&key);
                if live {
                    assert!(
                        claimed,
                        "false negative for live key {key} at op {}",
                        self.ops
                    );
                }
            }
        }
    }

    /// Full sweep: every live key must be present.
    fn sweep<F: CountingFilter>(&self, f: &F) {
        for (&key, &count) in &self.oracle {
            if count > 0 {
                assert!(f.contains(&key), "sweep: lost key {key} (count {count})");
            }
        }
    }
}

fn stress_mpcbf(rounds: u64, seed: u64) {
    let cfg = MpcbfConfig::builder()
        .memory_bits(400_000)
        .expected_items(2_500)
        .hashes(3)
        .seed(seed)
        .build()
        .expect("shape");
    let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
    let mut d = Driver::new(seed ^ 0x51e5);
    for round in 0..rounds {
        d.step(&mut f);
        if round % 10_000 == 9_999 {
            d.sweep(&f);
            // Codec round-trip mid-stream: the decoded filter must be a
            // perfect continuation point.
            f = Mpcbf::decode(&f.encode()).expect("codec roundtrip");
            d.sweep(&f);
        }
    }
    d.sweep(&f);
    println!(
        "  MPCBF-1: {} ops, {} refused inserts, {} FP-removes compensated — OK",
        d.ops, d.inserts_refused, d.removes_rejected
    );
}

fn stress_generic<F: CountingFilter>(name: &str, mut f: F, rounds: u64, seed: u64) {
    let mut d = Driver::new(seed ^ 0x57e5);
    for round in 0..rounds {
        d.step(&mut f);
        if round % 20_000 == 19_999 {
            d.sweep(&f);
        }
    }
    d.sweep(&f);
    println!(
        "  {name}: {} ops, {} refused inserts, {} FP-removes compensated — OK",
        d.ops, d.inserts_refused, d.removes_rejected
    );
}

fn main() {
    let args = Args::parse();
    let rounds = args.scaled(200_000);
    println!("stress: {rounds} ops per structure, key space {KEY_SPACE}");

    stress_mpcbf(rounds, 1);
    stress_generic("CBF", Cbf::<Murmur3>::new(60_000, 3, 2), rounds, 2);
    stress_generic(
        "PCBF-2",
        mpcbf_core::Pcbf::<Murmur3>::new(4_096, 64, 3, 2, 3),
        rounds,
        3,
    );
    stress_generic("dlCBF", DlCbf::<Murmur3>::new(4, 1024, 8, 12, 4), rounds, 4);
    stress_generic("VI-CBF", ViCbf::<Murmur3>::new(30_000, 3, 4, 5), rounds, 5);
    stress_generic("RCBF", Rcbf::<Murmur3>::new(8_192, 12, 2, 6), rounds, 6);
    println!("stress: all structures clean");
}
