//! Differential stress harness: drives every counting filter with a
//! randomized insert/remove/query/churn/codec mix against an exact
//! multiset oracle, for as many rounds as you give it.
//!
//! ```text
//! cargo run --release -p mpcbf-bench --bin stress              # ~1 M ops
//! cargo run --release -p mpcbf-bench --bin stress -- --scale 10  # quick
//! ```
//!
//! This is the "leave it running" layer above the proptest suites: no
//! shrinking, but far more operations, periodic invariant sweeps, and
//! codec round-trips injected mid-stream (encode → decode → continue),
//! which property tests don't interleave.
//!
//! With `--telemetry` the binary instead runs the metered validation
//! replay (see `mpcbf_bench::telemetry`): the synthetic workload streams
//! through the `*_batch_metered` pipeline into per-contender `Telemetry`
//! registries, the Prometheus pages and `BENCH_telemetry.json` are
//! emitted, and the measured mean accesses must match Table II/III within
//! tolerance or the process exits non-zero.
//!
//! With `--faults SEED` the binary instead replays the seeded
//! fault-injection campaign (see `mpcbf_workloads::faults`): every
//! injected bit flip must be caught by `scrub()`, every poisoned shard by
//! the epoch scrub, every dropped/duplicated batch op by population
//! accounting, every forced overflow absorbed by `ResilientMpcbf` with
//! zero false negatives, every failed batch insert must leave the
//! filter bit-identical, and every seeded kill point (crash mid-append,
//! mid-fsync, mid-snapshot-write, mid-rename, mid-truncate) must recover
//! bit-exactly through the durability layer. Any violation panics,
//! failing CI.
//!
//! With `--drill-matrix` the campaign runs over every seed in
//! [`mpcbf_workloads::DRILL_SEEDS`] — the exact matrix CI executes.
//!
//! With `--ramp` the binary instead runs the elastic capacity drill: a
//! 10x phased key ramp (`mpcbf_workloads::RampSpec`) against a
//! manual-mode `ElasticMpcbf`, asserting zero false negatives on the
//! live set and empirical FPR within the analytic stacked-generation
//! envelope at every phase boundary *and at sampled points inside an
//! in-flight compaction*, plus a sliding-window rotation check (no
//! false negative on any in-window key across a full rotation cycle).
//! Any violation panics, failing CI.

use mpcbf_bench::Args;
use mpcbf_concurrent::ShardedMpcbf;
use mpcbf_core::scrub::SEGMENT_WORDS;
use mpcbf_core::{Cbf, CountingFilter, Filter, Mpcbf, MpcbfConfig, ResilientMpcbf};
use mpcbf_durability::{
    encode_frame, DurabilityOptions, DurableFilter, DurableShardedMpcbf, KillSite, KillSwitch,
    WalOp, WalRecord,
};
use mpcbf_hash::Murmur3;
use mpcbf_variants::{DlCbf, Rcbf, ViCbf};
use mpcbf_workloads::driver::{replay_synthetic, replay_synthetic_faulty};
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};
use mpcbf_workloads::{FaultMix, FaultPlan, RampSpec, DRILL_SEEDS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::PathBuf;

const KEY_SPACE: u64 = 5_000;

struct Driver {
    oracle: HashMap<u64, u32>,
    rng: StdRng,
    ops: u64,
    removes_rejected: u64,
    inserts_refused: u64,
}

impl Driver {
    fn new(seed: u64) -> Self {
        Driver {
            oracle: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            ops: 0,
            removes_rejected: 0,
            inserts_refused: 0,
        }
    }

    /// One random operation; panics on any contract violation.
    fn step<F: CountingFilter>(&mut self, f: &mut F) {
        self.ops += 1;
        let key = self.rng.gen_range(0..KEY_SPACE);
        match self.rng.gen_range(0..10u32) {
            // 40% inserts
            0..=3 => {
                if f.insert(&key).is_ok() {
                    *self.oracle.entry(key).or_insert(0) += 1;
                } else {
                    self.inserts_refused += 1;
                }
            }
            // 30% removes of live keys only (the supported contract)
            4..=6 => {
                if self.oracle.get(&key).copied().unwrap_or(0) > 0 {
                    f.remove(&key)
                        .unwrap_or_else(|e| panic!("remove of live key {key} failed: {e}"));
                    *self.oracle.get_mut(&key).unwrap() -= 1;
                } else {
                    // Absent key: refusal is the expected outcome; a
                    // (false-positive) success would void the oracle, so
                    // compensate by treating it as an insert-then-remove.
                    if f.remove(&key).is_ok() {
                        self.removes_rejected += 1;
                        let _ = f.insert(&key);
                    }
                }
            }
            // 30% queries
            _ => {
                let live = self.oracle.get(&key).copied().unwrap_or(0) > 0;
                let claimed = f.contains(&key);
                if live {
                    assert!(
                        claimed,
                        "false negative for live key {key} at op {}",
                        self.ops
                    );
                }
            }
        }
    }

    /// Full sweep: every live key must be present.
    fn sweep<F: CountingFilter>(&self, f: &F) {
        for (&key, &count) in &self.oracle {
            if count > 0 {
                assert!(f.contains(&key), "sweep: lost key {key} (count {count})");
            }
        }
    }
}

fn stress_mpcbf(rounds: u64, seed: u64) {
    let cfg = MpcbfConfig::builder()
        .memory_bits(400_000)
        .expected_items(2_500)
        .hashes(3)
        .seed(seed)
        .build()
        .expect("shape");
    let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
    let mut d = Driver::new(seed ^ 0x51e5);
    for round in 0..rounds {
        d.step(&mut f);
        if round % 10_000 == 9_999 {
            d.sweep(&f);
            // Codec round-trip mid-stream: the decoded filter must be a
            // perfect continuation point.
            f = Mpcbf::decode(&f.encode()).expect("codec roundtrip");
            d.sweep(&f);
        }
    }
    d.sweep(&f);
    println!(
        "  MPCBF-1: {} ops, {} refused inserts, {} FP-removes compensated — OK",
        d.ops, d.inserts_refused, d.removes_rejected
    );
}

fn stress_generic<F: CountingFilter>(name: &str, mut f: F, rounds: u64, seed: u64) {
    let mut d = Driver::new(seed ^ 0x57e5);
    for round in 0..rounds {
        d.step(&mut f);
        if round % 20_000 == 19_999 {
            d.sweep(&f);
        }
    }
    d.sweep(&f);
    println!(
        "  {name}: {} ops, {} refused inserts, {} FP-removes compensated — OK",
        d.ops, d.inserts_refused, d.removes_rejected
    );
}

/// Drill 1: every surviving bit flip must be caught by `scrub()` and
/// undoing the flips must restore a clean report.
fn drill_scrub(plan: &FaultPlan) {
    let cfg = MpcbfConfig::builder()
        .memory_bits(400_000)
        .expected_items(2_500)
        .hashes(3)
        .seed(plan.seed)
        .build()
        .expect("shape");
    let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
    for i in 0..2_000u64 {
        f.insert(&i).expect("healthy insert");
    }
    assert_eq!(f.verify(), Ok(()), "pre-damage filter must verify clean");
    let seal = f.seal();
    assert!(f.scrub(&seal).is_clean());

    // Accumulate flips per word: two identical masks on one word cancel.
    let l = f.raw_words().len() as u64;
    let mut net: HashMap<usize, u64> = HashMap::new();
    for (hint, mask) in plan.flips() {
        let word = (hint % l) as usize;
        f.corrupt_word_xor(word, mask);
        *net.entry(word).or_insert(0) ^= mask;
    }
    let mut expected: Vec<usize> = net
        .iter()
        .filter(|&(_, &m)| m != 0)
        .map(|(&w, _)| w / SEGMENT_WORDS)
        .collect();
    expected.sort_unstable();
    expected.dedup();

    let report = f.scrub(&seal);
    assert_eq!(
        report.corrupt_segments, expected,
        "scrub must localise every flipped segment, and only those"
    );
    for (&word, &mask) in &net {
        f.corrupt_word_xor(word, mask);
    }
    assert!(f.scrub(&seal).is_clean(), "undone damage must scrub clean");
    println!(
        "  scrub drill: {} flips over {} words → {} dirty segments detected — OK",
        plan.flips().count(),
        l,
        expected.len()
    );
}

/// Drill 2: poisoned shards must be caught by the sharded epoch scrub
/// with correctly globalised segment indices.
fn drill_epoch_scrub(plan: &FaultPlan) {
    let cfg = MpcbfConfig::builder()
        .memory_bits(1_000_000)
        .expected_items(10_000)
        .hashes(3)
        .seed(plan.seed ^ 0x5EED)
        .build()
        .expect("shape");
    let f: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, 64);
    for i in 0..5_000u64 {
        f.insert(&i).expect("healthy insert");
    }
    let seals = f.seal();
    assert!(f.scrub(&seals).is_clean());

    let shards = f.shard_count() as u64;
    let words = f.shard_raw_words(0).len() as u64;
    let per = seals[0].segments();
    let mut net: HashMap<(usize, usize), u64> = HashMap::new();
    for (shard_hint, word_hint, mask) in plan.poisonings() {
        let (s, w) = ((shard_hint % shards) as usize, (word_hint % words) as usize);
        f.corrupt_word_xor(s, w, mask);
        *net.entry((s, w)).or_insert(0) ^= mask;
    }
    let mut expected: Vec<usize> = net
        .iter()
        .filter(|&(_, &m)| m != 0)
        .map(|(&(s, w), _)| s * per + w / SEGMENT_WORDS)
        .collect();
    expected.sort_unstable();
    expected.dedup();

    let report = f.scrub(&seals);
    assert_eq!(
        report.corrupt_segments, expected,
        "epoch scrub must localise every poisoned shard segment"
    );
    for (&(s, w), &mask) in &net {
        f.corrupt_word_xor(s, w, mask);
    }
    assert!(f.scrub(&seals).is_clean());
    println!(
        "  epoch-scrub drill: {} poisonings over {} shards → {} dirty segments detected — OK",
        plan.poisonings().count(),
        shards,
        expected.len()
    );
}

/// Drill 3: hot keys far past word capacity must be absorbed by the
/// spillover path — lossless inserts, zero false negatives, full drain.
fn drill_spillover(plan: &FaultPlan) {
    let cfg = MpcbfConfig::builder()
        .memory_bits(256)
        .expected_items(1_000)
        .hashes(3)
        .n_max(1)
        .seed(plan.seed ^ 0x0F10)
        .build()
        .expect("shape");
    let mut f: ResilientMpcbf = ResilientMpcbf::new(cfg);
    let hot: Vec<(u64, u32)> = plan.hot_keys().collect();
    for &(key, copies) in &hot {
        for _ in 0..copies {
            f.insert(&key).expect("spillover makes inserts lossless");
        }
        assert!(f.contains(&key), "zero false negatives under saturation");
    }
    assert!(
        f.spilled_inserts() > 0,
        "hot keys on a saturated shape must actually spill"
    );
    assert!(f.health().is_spilling());
    for &(key, copies) in &hot {
        for _ in 0..copies {
            assert!(f.contains(&key), "key must stay visible while draining");
            f.remove(&key).expect("every stored copy must drain");
        }
    }
    assert_eq!(f.items(), 0, "campaign must drain completely");
    assert_eq!(f.spill_occupancy(), 0);
    println!(
        "  spillover drill: {} hot keys, {} spilled inserts absorbed, drained to zero — OK",
        hot.len(),
        f.spilled_inserts()
    );
}

/// Drill 4: a batch whose every insert overflows must leave the filter
/// bit-identical, and a mixed batch must equal its scalar replay.
fn drill_batch_rollback(plan: &FaultPlan) {
    let cfg = MpcbfConfig::builder()
        .memory_bits(256)
        .expected_items(1_000)
        .hashes(3)
        .n_max(1)
        .seed(plan.seed ^ 0xB01)
        .build()
        .expect("shape");
    let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
    let hot = plan
        .hot_keys()
        .next()
        .map(|(k, _)| k)
        .unwrap_or(0xD00D)
        .to_le_bytes();
    // Fill the hot key to exact word capacity.
    let mut stored = 0u32;
    while f.insert_bytes_cost(&hot).is_ok() {
        stored += 1;
    }
    assert!(stored > 0);

    let before = f.raw_words().to_vec();
    let all_hot: Vec<&[u8]> = vec![&hot; 16];
    let (results, _) = f.insert_batch_cost(&all_hot);
    assert!(
        results.iter().all(Result::is_err),
        "a full word must refuse every batched copy"
    );
    assert_eq!(
        f.raw_words(),
        &before[..],
        "failed batch must leave the filter bit-identical"
    );

    // Mixed batch: overflowing keys interleaved with fresh ones must land
    // exactly as a scalar loop would.
    let fresh: Vec<[u8; 8]> = (1..=8u64).map(|i| (0xF00D + i).to_le_bytes()).collect();
    let mut batch_keys: Vec<&[u8]> = Vec::new();
    for k in &fresh {
        batch_keys.push(&hot);
        batch_keys.push(k.as_slice());
    }
    let mut scalar_f = f.clone();
    let scalar: Vec<bool> = batch_keys
        .iter()
        .map(|k| scalar_f.insert_bytes_cost(k).is_ok())
        .collect();
    let (batched, _) = f.insert_batch_cost(&batch_keys);
    let batched_ok: Vec<bool> = batched.iter().map(Result::is_ok).collect();
    assert_eq!(batched_ok, scalar, "mid-batch failures must match scalar");
    assert_eq!(
        f.raw_words(),
        scalar_f.raw_words(),
        "mixed batch must leave the exact scalar state"
    );
    println!(
        "  rollback drill: {stored}-deep word refused a 16-copy batch bit-identically, \
         mixed batch matched scalar — OK"
    );
}

/// Drill 5: dropped/duplicated batch ops must surface as an exact,
/// reproducible population divergence.
fn drill_stream_faults(plan: &FaultPlan) {
    let spec = SyntheticSpec {
        periods: 0,
        ..SyntheticSpec::default()
    }
    .scaled_down(100);
    let w = SyntheticWorkload::generate(&spec);
    let cfg = MpcbfConfig::builder()
        .memory_bits(200_000)
        .expected_items(2_000)
        .hashes(3)
        .seed(plan.seed ^ 0xD0D0)
        .build()
        .expect("shape");
    let mut clean_f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
    let clean = replay_synthetic(&mut clean_f, &w, 64);
    let mut faulty_f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
    let (faulty, log) = replay_synthetic_faulty(&mut faulty_f, &w, 64, plan);
    assert!(!log.is_clean(), "plan must perturb the stream");
    assert_eq!(
        faulty_f.items() as i64,
        clean_f.items() as i64 + log.delta(),
        "population accounting must detect every drop and duplicate"
    );
    assert_eq!(
        faulty.inserts as i64,
        clean.inserts as i64 + log.delta(),
        "attempt counts must shift by exactly the log"
    );
    println!(
        "  stream drill: {} dropped + {} duplicated ops → population delta {} detected — OK",
        log.dropped,
        log.duplicated,
        log.delta()
    );
}

/// A fresh scratch directory for one durability scenario.
fn drill_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static DIR_ID: AtomicU64 = AtomicU64::new(0);
    let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "mpcbf-stress-drill-{tag}-{}-{id}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One seeded insert/remove op over the drill key space.
#[derive(Clone, Copy)]
enum DrillOp {
    Insert(u64),
    Remove(u64),
}

/// A deterministic op stream: mostly inserts, removes only of live keys
/// (the supported contract), over a small key space so removes happen.
fn drill_ops(seed: u64, count: usize) -> Vec<DrillOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD121);
    let mut live: HashMap<u64, u32> = HashMap::new();
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        let key = rng.gen_range(0..400u64);
        let can_remove = live.get(&key).copied().unwrap_or(0) > 0;
        if can_remove && rng.gen_range(0..10u32) < 4 {
            *live.get_mut(&key).unwrap() -= 1;
            ops.push(DrillOp::Remove(key));
        } else {
            *live.entry(key).or_insert(0) += 1;
            ops.push(DrillOp::Insert(key));
        }
    }
    ops
}

fn drill_config(seed: u64) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(100_000)
        .expected_items(1_000)
        .hashes(3)
        .seed(seed ^ 0xDB1)
        .build()
        .expect("shape")
}

/// Runs one kill-point scenario against `DurableFilter<Mpcbf>` and
/// proves bit-exact recovery. Every op acknowledged before the crash
/// must survive it; the recovered image must equal a reference filter
/// that applied exactly the durable prefix; torn tails must be reported
/// and the recovered image must scrub clean.
fn drill_one_kill(seed: u64, site: KillSite, op_hint: u64, byte_hint: u64) {
    let cfg = drill_config(seed);
    let dir = drill_dir("kill");
    let kill = KillSwitch::new();
    let opts = DurabilityOptions::new(&dir).kill(kill.clone());
    let mut durable: DurableFilter<Mpcbf<u64, Murmur3>> =
        DurableFilter::create(Mpcbf::new(cfg), opts).expect("create");
    let mut reference: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);

    let ops = drill_ops(seed, 200);
    let kill_at = (op_hint % ops.len() as u64) as usize;
    // A scalar 8-byte-key frame is fixed-size; a budget in
    // 1..frame_len always leaves a torn (reported) tail.
    let frame_len = encode_frame(&WalRecord {
        seq: 1,
        op: WalOp::Insert(vec![0; 8]),
    })
    .len() as u64;
    let budget = 1 + byte_hint % (frame_len - 1);

    let apply_ref = |reference: &mut Mpcbf<u64, Murmur3>, op: DrillOp| match op {
        DrillOp::Insert(k) => {
            let _ = reference.insert_bytes_cost(&k.to_le_bytes());
        }
        DrillOp::Remove(k) => {
            let _ = reference.remove_bytes_cost(&k.to_le_bytes());
        }
    };
    let apply_durable = |durable: &mut DurableFilter<Mpcbf<u64, Murmur3>>, op: DrillOp| match op {
        DrillOp::Insert(k) => durable.insert_bytes(&k.to_le_bytes()).map(|_| ()),
        DrillOp::Remove(k) => durable.remove_bytes(&k.to_le_bytes()).map(|_| ()),
    };

    // Acknowledged prefix, with a mid-stream snapshot to force recovery
    // through the snapshot + WAL-replay path, not WAL-only.
    let mut acked: HashMap<u64, i64> = HashMap::new();
    for (i, &op) in ops[..kill_at].iter().enumerate() {
        if i == kill_at / 2 {
            durable.snapshot().expect("unarmed snapshot");
        }
        match apply_durable(&mut durable, op) {
            // Only a successful op guarantees key presence/absence; a
            // refused op is acked (and replayed) but changed nothing.
            Ok(()) => match op {
                DrillOp::Insert(k) => *acked.entry(k).or_insert(0) += 1,
                DrillOp::Remove(k) => *acked.entry(k).or_insert(0) -= 1,
            },
            Err(e) if e.is_kill() => panic!("unarmed op killed: {e}"),
            Err(_) => {} // deterministic filter refusal: still acked
        }
        apply_ref(&mut reference, op);
    }

    // Arm and crash. What is durable past the ack point depends on the
    // site: a torn append never hit disk whole (frame dropped), a failed
    // fsync left a complete frame behind (replayed: durable but never
    // acknowledged — allowed), and the snapshot sites crash housekeeping
    // with no op in flight at all.
    kill.arm(site, budget);
    let mut expect_torn = false;
    match site {
        KillSite::WalAppend | KillSite::WalFsync => {
            let op = ops[kill_at];
            let err = apply_durable(&mut durable, op).expect_err("armed op must crash");
            assert!(err.is_kill(), "expected a kill, got: {err}");
            if site == KillSite::WalFsync {
                // Frame complete ⇒ durable, but never acknowledged:
                // the client may not assume either outcome for this
                // key, so it is exempt from the acked-presence check.
                apply_ref(&mut reference, op);
                let (DrillOp::Insert(k) | DrillOp::Remove(k)) = op;
                acked.remove(&k);
            } else {
                expect_torn = true; // budget < frame ⇒ torn tail
            }
        }
        KillSite::SnapshotWrite | KillSite::SnapshotRename | KillSite::WalTruncate => {
            match durable.snapshot() {
                // With no op logged yet there is no sealed segment to
                // purge, so the truncate site never executes and the
                // scenario degrades to a crash after a clean snapshot.
                Ok(()) if site == KillSite::WalTruncate && kill_at == 0 => kill.disarm(),
                Ok(()) => panic!("{site}: armed snapshot must crash"),
                Err(err) => {
                    assert!(err.is_kill(), "expected a kill, got: {err}");
                    assert_eq!(kill.fired(), Some(site), "the armed site must fire");
                }
            }
        }
    }
    drop(durable); // the "crash": writer state abandoned

    let (recovered, report) =
        DurableFilter::open_or_recover(DurabilityOptions::new(&dir), || -> Mpcbf<u64, Murmur3> {
            Mpcbf::new(cfg)
        })
        .expect("recovery must always succeed");
    assert_eq!(
        recovered.inner().raw_words(),
        reference.raw_words(),
        "{site}: recovered image must be bit-identical to the durable prefix"
    );
    for (&key, &net) in &acked {
        if net > 0 {
            assert!(
                recovered.contains_bytes(&key.to_le_bytes()),
                "{site}: false negative for acknowledged key {key}"
            );
        }
    }
    if expect_torn {
        assert!(
            !report.torn_tails.is_empty(),
            "{site}: a torn append must be reported"
        );
        assert!(report.bytes_truncated > 0, "{site}: torn bytes truncated");
    }
    assert!(
        report.scrub_clean,
        "{site}: recovered image must scrub clean"
    );
    std::fs::remove_dir_all(&dir).expect("scratch cleanup");
}

/// Kill-point scenario against the per-shard WAL layout: crash one
/// shard's append mid-frame, recover all shards in parallel, and prove
/// the acknowledged prefix survived bit-exactly.
fn drill_sharded_kill(seed: u64, op_hint: u64, byte_hint: u64) {
    let cfg = MpcbfConfig::builder()
        .memory_bits(400_000)
        .expected_items(4_000)
        .hashes(3)
        .seed(seed ^ 0x5D5D)
        .build()
        .expect("shape");
    let dir = drill_dir("sharded");
    let kill = KillSwitch::new();
    let opts = DurabilityOptions::new(&dir).kill(kill.clone());
    let mut durable: DurableShardedMpcbf<Murmur3> =
        DurableShardedMpcbf::create(ShardedMpcbf::new(cfg, 8), opts).expect("create");
    let reference: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, 8);

    let ops = drill_ops(seed ^ 0x77, 200);
    let kill_at = (op_hint % ops.len() as u64) as usize;
    for &op in &ops[..kill_at] {
        match op {
            DrillOp::Insert(k) => {
                let _ = durable.insert_bytes(&k.to_le_bytes());
                let _ = reference.insert_bytes(&k.to_le_bytes());
            }
            DrillOp::Remove(k) => {
                let _ = durable.remove_bytes(&k.to_le_bytes());
                let _ = reference.remove_bytes(&k.to_le_bytes());
            }
        }
    }
    let frame_len = encode_frame(&WalRecord {
        seq: 1,
        op: WalOp::Insert(vec![0; 8]),
    })
    .len() as u64;
    kill.arm(KillSite::WalAppend, 1 + byte_hint % (frame_len - 1));
    let victim = match ops[kill_at] {
        DrillOp::Insert(k) | DrillOp::Remove(k) => k,
    };
    let err = match ops[kill_at] {
        DrillOp::Insert(k) => durable.insert_bytes(&k.to_le_bytes()),
        DrillOp::Remove(k) => durable.remove_bytes(&k.to_le_bytes()),
    }
    .expect_err("armed shard append must crash");
    assert!(err.is_kill(), "expected a kill, got: {err}");
    drop(durable);

    let (recovered, report) = DurableShardedMpcbf::open_or_recover(
        DurabilityOptions::new(&dir),
        || -> ShardedMpcbf<u64, Murmur3> { ShardedMpcbf::new(cfg, 8) },
    )
    .expect("sharded recovery must succeed");
    for s in 0..reference.shard_count() {
        assert_eq!(
            recovered.inner().shard_raw_words(s),
            reference.shard_raw_words(s),
            "shard {s} must recover bit-identical (victim key {victim})"
        );
    }
    assert!(
        !report.torn_tails.is_empty(),
        "the torn shard append must be reported"
    );
    assert!(
        report.scrub_clean,
        "recovered sharded image must scrub clean"
    );
    std::fs::remove_dir_all(&dir).expect("scratch cleanup");
}

/// Drill 6: seeded kill-point injection. Every kill site is exercised
/// at a plan-derived op index and torn-write byte budget, plus every
/// explicit `Fault::CrashPoint` the plan drew, plus one per-shard WAL
/// crash — each proving bit-exact recovery with zero false negatives.
fn drill_durability(plan: &FaultPlan) {
    let mut rng = StdRng::seed_from_u64(plan.seed ^ 0xDEAD);
    let mut scenarios = 0usize;
    for &site in &KillSite::ALL {
        drill_one_kill(plan.seed, site, rng.gen(), rng.gen());
        scenarios += 1;
    }
    for (site_hint, op_hint, byte_hint) in plan.crash_points() {
        let site = KillSite::ALL[(site_hint % KillSite::ALL.len() as u64) as usize];
        drill_one_kill(plan.seed, site, op_hint, byte_hint);
        scenarios += 1;
    }
    drill_sharded_kill(plan.seed, rng.gen(), rng.gen());
    scenarios += 1;
    println!(
        "  durability drill: {scenarios} kill-point scenarios \
         (all {} sites + {} plan crash points + sharded) recovered bit-exact — OK",
        KillSite::ALL.len(),
        plan.crash_points().count()
    );
}

/// The `--faults SEED` campaign: replay one deterministic [`FaultPlan`]
/// through every drill. Any undetected or unabsorbed fault panics.
fn fault_campaign(seed: u64) {
    let plan = FaultPlan::generate(seed, FaultMix::default());
    println!(
        "fault campaign: seed {seed}, {} injected faults",
        plan.faults.len()
    );
    drill_scrub(&plan);
    drill_epoch_scrub(&plan);
    drill_spillover(&plan);
    drill_batch_rollback(&plan);
    drill_stream_faults(&plan);
    drill_durability(&plan);
    println!("fault campaign: seed {seed} — all faults detected or absorbed");
}

/// The `--telemetry` mode: metered Table II/III validation replay.
/// Prints the Prometheus pages, writes `BENCH_telemetry.json`, and exits
/// non-zero if any contender's measured mean accesses drift outside the
/// tolerance.
fn telemetry_validation(args: &Args) {
    let v = mpcbf_bench::telemetry::run_validation(args);
    let json = v.to_json();
    std::fs::write("BENCH_telemetry.json", &json).expect("write BENCH_telemetry.json");
    if !args.quiet {
        println!("{}", v.prometheus_pages());
        println!("{json}");
    }
    for row in &v.rows {
        println!(
            "  {}: query {:.3} accesses (expect {:.3}), update {:.3} (expect {:.3}) — {}",
            row.name,
            row.measured_query,
            row.expected_query,
            row.measured_update,
            row.expected_update,
            if row.within_tolerance() {
                "OK"
            } else {
                "DRIFT"
            }
        );
    }
    println!("wrote BENCH_telemetry.json");
    if !v.pass() {
        eprintln!("telemetry validation failed: measured accesses drifted past tolerance");
        std::process::exit(1);
    }
}

/// One FPR-vs-envelope sample: empirical false-positive rate over the
/// never-inserted probe set must sit inside the analytic envelope (plus
/// four binomial standard deviations of sampling noise).
fn check_fpr_within_envelope(
    filter: &mpcbf_core::ElasticMpcbf<Murmur3>,
    probes: &[Vec<u8>],
    when: &str,
) -> (f64, f64) {
    let hits = probes.iter().filter(|p| filter.contains_bytes(p)).count();
    let empirical = hits as f64 / probes.len() as f64;
    let envelope = filter.fpr_envelope();
    let sigma = (envelope * (1.0 - envelope) / probes.len() as f64)
        .max(0.0)
        .sqrt();
    assert!(
        empirical <= envelope + 4.0 * sigma + 1e-9,
        "{when}: empirical FPR {empirical:.6} exceeds envelope {envelope:.6} (+4σ)"
    );
    (empirical, envelope)
}

/// The elastic capacity drill (see the module docs).
fn ramp_drill(args: &Args) {
    use mpcbf_core::policy::CapacityPolicy;
    use mpcbf_core::{ElasticMpcbf, SlidingWindowMpcbf};

    let base_items = args.scaled(20_000);
    let spec = RampSpec::tenfold(base_items, 0x7a3f);
    let probes = spec.negative_probes(20_000);
    let config = MpcbfConfig::builder()
        .memory_bits(16 * base_items)
        .expected_items(base_items)
        .hashes(3)
        .seed(0x5eed)
        .build()
        .expect("ramp shape");

    println!("ramp drill: {base_items} -> {} keys", spec.final_items());
    let mut filter: ElasticMpcbf<Murmur3> =
        ElasticMpcbf::manual(config, CapacityPolicy::default()).expect("elastic filter");
    let mut live: Vec<Vec<u8>> = Vec::with_capacity(spec.final_items() as usize);
    let mut mid_samples = 0u64;
    for (i, phase) in spec.phases().into_iter().enumerate() {
        for key in &phase.keys {
            filter
                .insert_bytes(key)
                .expect("elastic insert is lossless");
        }
        live.extend(phase.keys);
        // Drive any parked scale plan, sampling FPR *inside* the
        // migration: the envelope must hold at every instant, not just
        // at the fixed points.
        while let Some(plan) = filter.scale_plan() {
            filter.apply_scale(&plan).expect("apply parked scale plan");
            assert!(filter.begin_compaction(), "scale-up must leave sources");
            while filter.compacting() {
                filter.step_compaction(live.len() / 64 + 1);
                check_fpr_within_envelope(&filter, &probes, "mid-compaction");
                mid_samples += 1;
                for key in live.iter().step_by(97) {
                    assert!(
                        filter.contains_bytes(key),
                        "false negative mid-compaction at phase {i}"
                    );
                }
            }
        }
        assert_eq!(filter.items(), phase.target_items, "phase {i} population");
        for key in &live {
            assert!(filter.contains_bytes(key), "false negative at phase {i}");
        }
        let (empirical, envelope) =
            check_fpr_within_envelope(&filter, &probes, &format!("phase {i}"));
        filter.verify().expect("structural invariants");
        println!(
            "  phase {i}: items {} generations {} fpr {empirical:.6} <= envelope {envelope:.6}",
            filter.items(),
            filter.generation_count(),
        );
    }
    assert!(
        filter.scale_events() > 0,
        "a 10x ramp must trigger at least one scale-up"
    );
    assert!(mid_samples > 0, "the drill must sample inside a migration");
    println!(
        "ramp drill: clean ({} scale events, {} compactions, {mid_samples} mid-migration samples)",
        filter.scale_events(),
        filter.compactions()
    );

    // Sliding window: a full rotation cycle with zero false negatives
    // on every in-window key.
    let slots = 4usize;
    let per_epoch = args.scaled(2_000);
    let mut window: SlidingWindowMpcbf<Murmur3> = SlidingWindowMpcbf::new(config, slots);
    let mut epochs: Vec<Vec<Vec<u8>>> = Vec::new();
    for epoch in 0..(2 * slots as u64 + 1) {
        let keys: Vec<Vec<u8>> = (0..per_epoch)
            .map(|i| format!("window-{epoch}-{i}").into_bytes())
            .collect();
        for key in &keys {
            window.insert_bytes(key).expect("window insert");
        }
        epochs.push(keys);
        // Every key whose slot is still in the ring must answer present.
        let in_window = epochs.iter().rev().take(slots);
        for (age, keys) in in_window.enumerate() {
            for key in keys {
                assert!(
                    window.contains_bytes(key),
                    "window false negative (epoch age {age}, rotation {epoch})"
                );
            }
        }
        window.rotate();
    }
    window.verify().expect("window invariants");
    println!(
        "window drill: clean ({} rotations, {} slots)",
        window.rotations(),
        slots
    );
}

fn main() {
    let args = Args::parse();
    if args.ramp {
        ramp_drill(&args);
        return;
    }
    if args.telemetry {
        telemetry_validation(&args);
        return;
    }
    if args.drill_matrix {
        println!("drill matrix: seeds {DRILL_SEEDS:?}");
        for seed in DRILL_SEEDS {
            fault_campaign(seed);
        }
        println!("drill matrix: every seed clean");
        return;
    }
    if let Some(seed) = args.faults {
        fault_campaign(seed);
        return;
    }
    let rounds = args.scaled(200_000);
    println!("stress: {rounds} ops per structure, key space {KEY_SPACE}");

    stress_mpcbf(rounds, 1);
    stress_generic("CBF", Cbf::<Murmur3>::new(60_000, 3, 2), rounds, 2);
    stress_generic(
        "PCBF-2",
        mpcbf_core::Pcbf::<Murmur3>::new(4_096, 64, 3, 2, 3),
        rounds,
        3,
    );
    stress_generic("dlCBF", DlCbf::<Murmur3>::new(4, 1024, 8, 12, 4), rounds, 4);
    stress_generic("VI-CBF", ViCbf::<Murmur3>::new(30_000, 3, 4, 5), rounds, 5);
    stress_generic("RCBF", Rcbf::<Murmur3>::new(8_192, 12, 2, 6), rounds, 6);
    println!("stress: all structures clean");
}
