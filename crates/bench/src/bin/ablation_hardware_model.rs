//! Ablation 7: the hardware projection of §IV.B.
//!
//! The paper argues that software timings (Fig. 8) are dominated by hash
//! computation, and that "in a realistic experiment with hardware support
//! for hashing … the performance of MPCBF-2 and PCBF-2 would be higher
//! than that of CBF" — i.e. with hashing offloaded, per-operation latency
//! is governed by the *measured* memory accesses and access bandwidth.
//!
//! This binary closes that loop: it takes the empirically metered
//! accesses/bandwidth of every structure (the Tables I–II quantities) and
//! projects per-query latency under a simple line-card memory model:
//!
//! ```text
//! t_query = accesses × t_SRAM + hash_bits / bus_bits_per_ns
//! ```
//!
//! with representative parameters (on-chip SRAM ≈ 1.5 ns per random
//! access; 64-bit hash-bit delivery per ns). The absolute numbers are
//! illustrative; the projected *ordering* — MPCBF-1 fastest, CBF slowest,
//! and the gap widening with optimal k — is the paper's §IV.B claim.

use mpcbf_analysis::{optimal_k_cbf, optimal_k_mpcbf};
use mpcbf_bench::report::fixed;
use mpcbf_bench::runner::Workload;
use mpcbf_bench::{run_suite, Args, Contender, Table};
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};

const T_SRAM_NS: f64 = 1.5;
const BUS_BITS_PER_NS: f64 = 64.0;

fn project(accesses: f64, bits: f64) -> f64 {
    accesses * T_SRAM_NS + bits / BUS_BITS_PER_NS
}

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let big_m = 8_000_000u64 / args.scale;
    let trials = args.trials_or(2);

    let make_workload = |trial: usize| {
        let spec = SyntheticSpec {
            test_set: n as usize,
            queries: args.scaled(500_000) as usize,
            churn_per_period: args.scaled(20_000) as usize,
            seed: 0xAB7 + trial as u64,
            ..SyntheticSpec::default()
        };
        let w = SyntheticWorkload::generate(&spec);
        Workload {
            inserts: w.test_set,
            churn: w.churn,
            queries: w.queries,
        }
    };

    // Panel A: fixed k = 3 (the Fig. 8 setting, hardware-projected).
    let mut t = Table::new(
        &format!(
            "Ablation — projected hardware latency, k = 3 (SRAM {T_SRAM_NS} ns, {BUS_BITS_PER_NS} bits/ns)"
        ),
        &["structure", "accesses", "bits", "t_query (ns)", "t_update (ns)"],
    );
    let rows = run_suite(&Contender::paper_five(), big_m, n, 3, trials, make_workload);
    for r in &rows {
        t.row(vec![
            r.name.clone(),
            fixed(r.query_accesses, 1),
            fixed(r.query_bits, 0),
            fixed(project(r.query_accesses, r.query_bits), 2),
            fixed(project(r.update_accesses, r.update_bits), 2),
        ]);
    }
    t.finish(&args.out_dir, "ablation_hardware_model_k3", args.quiet);

    // Panel B: each structure at its optimal k (the Fig. 11 setting).
    let mut t = Table::new(
        "Ablation — projected hardware latency at optimal k",
        &["structure", "k*", "accesses", "bits", "t_query (ns)"],
    );
    let k_cbf = optimal_k_cbf(big_m, 4, n);
    let rows = run_suite(&[Contender::Cbf], big_m, n, k_cbf, trials, make_workload);
    if let Some(r) = rows.first() {
        t.row(vec![
            "CBF".into(),
            k_cbf.to_string(),
            fixed(r.query_accesses, 1),
            fixed(r.query_bits, 0),
            fixed(project(r.query_accesses, r.query_bits), 2),
        ]);
    }
    for g in 1..=3u32 {
        if let Some(opt) = optimal_k_mpcbf(big_m, 64, n, g, 16) {
            let rows = run_suite(
                &[Contender::Mpcbf { g }],
                big_m,
                n,
                opt.k,
                trials,
                make_workload,
            );
            if let Some(r) = rows.first() {
                t.row(vec![
                    format!("MPCBF-{g}"),
                    opt.k.to_string(),
                    fixed(r.query_accesses, 1),
                    fixed(r.query_bits, 0),
                    fixed(project(r.query_accesses, r.query_bits), 2),
                ]);
            }
        }
    }
    t.finish(&args.out_dir, "ablation_hardware_model_optk", args.quiet);
}
