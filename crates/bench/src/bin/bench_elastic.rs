//! Elastic capacity benchmark: throughput and FPR before, during, and
//! after a scale-up, plus the sliding-window rotation check.
//!
//! ```text
//! cargo run --release -p mpcbf-bench --bin bench_elastic
//! cargo run --release -p mpcbf-bench --bin bench_elastic -- --scale 4
//! ```
//!
//! Emits `BENCH_elastic.json` (uploaded by the CI ramp-and-rotate job)
//! with three sections:
//!
//! * `ramp` — per-phase rows from a 10x key ramp against a manual-mode
//!   [`ElasticMpcbf`]: insert throughput, generation count, empirical
//!   FPR versus the analytic stacked envelope, and whether the phase
//!   crossed an in-flight compaction;
//! * `migration` — FPR sampled *inside* a compaction (the envelope must
//!   hold mid-migration, not just at fixed points);
//! * `window` — a full [`SlidingWindowMpcbf`] rotation cycle: rotation
//!   throughput and the in-window false-negative sweep (must be zero).

use mpcbf_bench::{rss, Args};
use mpcbf_core::policy::CapacityPolicy;
use mpcbf_core::{ElasticMpcbf, Filter, MpcbfConfig, SlidingWindowMpcbf};
use mpcbf_hash::Murmur3;
use mpcbf_workloads::RampSpec;
use std::fmt::Write as _;
use std::time::Instant;

struct PhaseRow {
    phase: usize,
    items: u64,
    generations: usize,
    inserts_per_sec: f64,
    empirical_fpr: f64,
    envelope: f64,
    scaled: bool,
}

struct MigrationSample {
    migrated_keys: u64,
    empirical_fpr: f64,
    envelope: f64,
}

fn empirical_fpr(filter: &ElasticMpcbf<Murmur3>, probes: &[Vec<u8>]) -> f64 {
    let hits = probes.iter().filter(|p| filter.contains_bytes(p)).count();
    hits as f64 / probes.len() as f64
}

fn main() {
    let args = Args::parse();
    rss::reset_peak_rss();
    let base_items = args.scaled(20_000);
    let spec = RampSpec::tenfold(base_items, 0x2b2b);
    let probes = spec.negative_probes(20_000);
    let config = MpcbfConfig::builder()
        .memory_bits(16 * base_items)
        .expected_items(base_items)
        .hashes(3)
        .seed(0x11)
        .build()
        .expect("ramp shape");

    let mut filter: ElasticMpcbf<Murmur3> =
        ElasticMpcbf::manual(config, CapacityPolicy::default()).expect("elastic filter");
    let mut phases: Vec<PhaseRow> = Vec::new();
    let mut migration: Vec<MigrationSample> = Vec::new();
    for (i, phase) in spec.phases().into_iter().enumerate() {
        let n = phase.keys.len() as u64;
        let start = Instant::now();
        for key in &phase.keys {
            filter.insert_bytes(key).expect("elastic insert");
        }
        let insert_secs = start.elapsed().as_secs_f64();
        let mut scaled = false;
        while let Some(plan) = filter.scale_plan() {
            scaled = true;
            filter.apply_scale(&plan).expect("apply scale plan");
            filter.begin_compaction();
            // Sample the envelope inside the migration at batch
            // granularity (a handful of points per compaction).
            let step = (filter.items() as usize / 8).max(64);
            while filter.compacting() {
                filter.step_compaction(step);
                migration.push(MigrationSample {
                    migrated_keys: filter.migrated_keys(),
                    empirical_fpr: empirical_fpr(&filter, &probes),
                    envelope: filter.fpr_envelope(),
                });
            }
        }
        phases.push(PhaseRow {
            phase: i,
            items: filter.items(),
            generations: filter.generation_count(),
            inserts_per_sec: n as f64 / insert_secs.max(1e-9),
            empirical_fpr: empirical_fpr(&filter, &probes),
            envelope: filter.fpr_envelope(),
            scaled,
        });
        if !args.quiet {
            let row = phases.last().expect("just pushed");
            println!(
                "phase {i}: items {} gens {} {:.0} inserts/s fpr {:.6} envelope {:.6}{}",
                row.items,
                row.generations,
                row.inserts_per_sec,
                row.empirical_fpr,
                row.envelope,
                if row.scaled { " [scaled]" } else { "" },
            );
        }
    }
    filter.verify().expect("elastic invariants");

    // Sliding window: rotation cost and the in-window FN sweep.
    let slots = 4usize;
    let per_epoch = args.scaled(2_000);
    let mut window: SlidingWindowMpcbf<Murmur3> = SlidingWindowMpcbf::new(config, slots);
    let mut epochs: Vec<Vec<Vec<u8>>> = Vec::new();
    let mut rotate_secs = 0.0f64;
    let mut window_fn = 0u64;
    for epoch in 0..(2 * slots as u64 + 1) {
        let keys: Vec<Vec<u8>> = (0..per_epoch)
            .map(|i| format!("w-{epoch}-{i}").into_bytes())
            .collect();
        for key in &keys {
            window.insert_bytes(key).expect("window insert");
        }
        epochs.push(keys);
        for keys in epochs.iter().rev().take(slots) {
            window_fn += keys.iter().filter(|k| !window.contains_bytes(k)).count() as u64;
        }
        let start = Instant::now();
        window.rotate();
        rotate_secs += start.elapsed().as_secs_f64();
    }
    let rotations = window.rotations();
    assert_eq!(window_fn, 0, "in-window keys must never go false-negative");
    let peak_rss_mib = rss::peak_rss_bytes().map(rss::bytes_to_mib);
    if !args.quiet {
        println!(
            "window: {rotations} rotations, {:.1} ms/rotation, {window_fn} in-window FNs",
            1e3 * rotate_secs / rotations as f64
        );
    }

    let mut json = String::from("{\n  \"ramp\": [\n");
    for (i, r) in phases.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"phase\": {}, \"items\": {}, \"generations\": {}, \
             \"inserts_per_sec\": {:.1}, \"empirical_fpr\": {:.8}, \
             \"envelope\": {:.8}, \"scaled\": {}}}{}",
            r.phase,
            r.items,
            r.generations,
            r.inserts_per_sec,
            r.empirical_fpr,
            r.envelope,
            r.scaled,
            if i + 1 == phases.len() { "" } else { "," },
        );
    }
    json.push_str("  ],\n  \"migration\": [\n");
    for (i, m) in migration.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"migrated_keys\": {}, \"empirical_fpr\": {:.8}, \"envelope\": {:.8}}}{}",
            m.migrated_keys,
            m.empirical_fpr,
            m.envelope,
            if i + 1 == migration.len() { "" } else { "," },
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"window\": {{\"slots\": {slots}, \"rotations\": {rotations}, \
         \"ms_per_rotation\": {:.3}, \"in_window_false_negatives\": {window_fn}}},\n  \
         \"scale_events\": {}, \"compactions\": {}, \"migrated_keys\": {},          \"peak_rss_mib\": {}\n}}\n",
        1e3 * rotate_secs / rotations as f64,
        filter.scale_events(),
        filter.compactions(),
        filter.migrated_keys(),
        peak_rss_mib
            .map(|m| format!("{m:.1}"))
            .unwrap_or_else(|| "null".to_string()),
    );
    std::fs::write("BENCH_elastic.json", &json).expect("write BENCH_elastic.json");
    println!("wrote BENCH_elastic.json");
}
