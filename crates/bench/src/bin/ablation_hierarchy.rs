//! Ablation 1: decompose MPCBF's accuracy win into its two ideas.
//!
//! DESIGN.md calls out that MPCBF = (partitioning) + (hierarchical
//! counters that free bits for the first level). This ablation isolates
//! them at fixed memory and k = 3, w = 64:
//!
//! * **PCBF-1** — flat 4-bit counters: membership range w/4 = 16;
//! * **MPCBF-1 with b1 forced to 16** (n_max override) — hierarchy *on*
//!   but the freed bits unused: the FPR must match PCBF-1's, showing the
//!   hierarchy alone buys nothing;
//! * **MPCBF-1 with the improved-HCBF b1** — the freed bits enlarge the
//!   first level: the entire accuracy win appears here (§III.B.3).

use mpcbf_bench::report::sci;
use mpcbf_bench::runner::{measure_workload, Workload};
use mpcbf_bench::{Args, Table};
use mpcbf_core::{Mpcbf, MpcbfConfig, Pcbf};
use mpcbf_hash::Murmur3;
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let big_m = 4_000_000u64 / args.scale;
    let (k, w) = (3u32, 64u32);
    // b1 = w/4 requires n_max = (w - w/4) / k = 16.
    let flat_equivalent_n_max = (w - w / 4) / k;

    let spec = SyntheticSpec {
        test_set: n as usize,
        queries: args.scaled(1_000_000) as usize,
        churn_per_period: args.scaled(20_000) as usize,
        seed: 0xAB1,
        ..SyntheticSpec::default()
    };
    let sw = SyntheticWorkload::generate(&spec);
    let workload = Workload {
        inserts: sw.test_set,
        churn: sw.churn,
        queries: sw.queries,
    };

    let mut t = Table::new(
        &format!(
            "Ablation — hierarchy vs first-level size (M = {} Mb, k = {k}, w = {w})",
            big_m as f64 / 1e6
        ),
        &["configuration", "b1", "FPR", "refused inserts"],
    );

    let mut pcbf = Pcbf::<Murmur3>::with_memory(big_m, w, k, 1, 7);
    let m = measure_workload("PCBF-1 (flat counters)", &mut pcbf, &workload);
    t.row(vec![
        m.name.clone(),
        (w / 4).to_string(),
        sci(m.fpr),
        m.skipped_inserts.to_string(),
    ]);

    let cfg = MpcbfConfig::builder()
        .memory_bits(big_m)
        .expected_items(n)
        .hashes(k)
        .n_max(flat_equivalent_n_max)
        .seed(7)
        .build()
        .expect("forced-b1 shape");
    let mut mp_flat: Mpcbf<u64> = Mpcbf::new(cfg);
    let m = measure_workload("MPCBF-1, b1 forced to w/4", &mut mp_flat, &workload);
    t.row(vec![
        m.name.clone(),
        cfg.shape().b1.to_string(),
        sci(m.fpr),
        m.skipped_inserts.to_string(),
    ]);

    let cfg = MpcbfConfig::builder()
        .memory_bits(big_m)
        .expected_items(n)
        .hashes(k)
        .seed(7)
        .build()
        .expect("improved shape");
    let mut mp_full: Mpcbf<u64> = Mpcbf::new(cfg);
    let m = measure_workload("MPCBF-1, improved HCBF", &mut mp_full, &workload);
    t.row(vec![
        m.name.clone(),
        cfg.shape().b1.to_string(),
        sci(m.fpr),
        m.skipped_inserts.to_string(),
    ]);

    t.finish(&args.out_dir, "ablation_hierarchy", args.quiet);
}
