//! Figure 10: false-positive rates achieved when every filter uses its
//! own FPR-optimal k, versus memory.
//!
//! CBF gets the classical `(m/n)·ln 2` optimum (k up to ~12 — and pays up
//! to ~12 memory accesses for it, see Fig. 11); MPCBF-g gets its
//! brute-force optimum from Eq. (8). To reproduce: at 8 Mb optimally-tuned
//! CBF roughly catches MPCBF-2, while MPCBF-3 stays about an order of
//! magnitude ahead — at 3 memory accesses instead of ~12.

use mpcbf_analysis::{cbf as cbf_model, optimal_k_cbf, optimal_k_mpcbf};
use mpcbf_bench::report::sci;
use mpcbf_bench::runner::Workload;
use mpcbf_bench::{run_suite, Args, Contender, Table};
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};

fn main() {
    let args = Args::parse();
    let trials = args.trials_or(3);
    let n = args.scaled(100_000);
    let w = 64u32;

    let mut t = Table::new(
        &format!("Fig. 10 — FPR at optimal k (n = {n}, {trials} trials; analytic + measured)"),
        &[
            "memory (Mb)",
            "k*(CBF)",
            "CBF analytic",
            "CBF measured",
            "k*(MP1)",
            "MPCBF-1 measured",
            "k*(MP2)",
            "MPCBF-2 measured",
            "k*(MP3)",
            "MPCBF-3 measured",
        ],
    );
    for mb in [4.0f64, 5.0, 6.0, 7.0, 8.0] {
        let big_m = ((mb * 1e6) as u64) / args.scale;
        let k_cbf = optimal_k_cbf(big_m, 4, n);
        let mut cells = vec![
            format!("{mb:.1}"),
            k_cbf.to_string(),
            sci(cbf_model::fpr(n, big_m / 4, k_cbf)),
        ];

        let make_workload = |trial: usize| {
            let spec = SyntheticSpec {
                test_set: n as usize,
                queries: args.scaled(1_000_000) as usize,
                churn_per_period: args.scaled(20_000) as usize,
                seed: 0xF10 + trial as u64 * 13,
                ..SyntheticSpec::default()
            };
            let wl = SyntheticWorkload::generate(&spec);
            Workload {
                inserts: wl.test_set,
                churn: wl.churn,
                queries: wl.queries,
            }
        };

        // CBF at its optimum.
        let rows = run_suite(&[Contender::Cbf], big_m, n, k_cbf, trials, make_workload);
        cells.push(
            rows.first()
                .map(|r| sci(r.fpr))
                .unwrap_or_else(|| "-".into()),
        );

        // MPCBF-g at each one's optimum.
        for g in 1..=3u32 {
            match optimal_k_mpcbf(big_m, w, n, g, 16) {
                Some(opt) => {
                    cells.push(opt.k.to_string());
                    let rows = run_suite(
                        &[Contender::Mpcbf { g }],
                        big_m,
                        n,
                        opt.k,
                        trials,
                        make_workload,
                    );
                    cells.push(
                        rows.first()
                            .map(|r| sci(r.fpr))
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                None => {
                    cells.push("-".into());
                    cells.push("-".into());
                }
            }
        }
        t.row(cells);
    }
    t.finish(&args.out_dir, "fig10_fpr_optimal_k", args.quiet);
}
