//! Figure 5: analytical false-positive rates of CBF, MPCBF-1 and MPCBF-2
//! with k = 3 and different word sizes.
//!
//! Uses the paper's average-load form (b1 = w − k·n/l, the expression
//! plotted in Fig. 5) and shows the headline analytical claim: "MPCBF-1
//! has an order of magnitude lower false positive rate than the standard
//! CBF, and increasing the word size can decrease the average rate".

use mpcbf_analysis::{cbf, mpcbf};
use mpcbf_bench::report::{fixed, sci};
use mpcbf_bench::{Args, Table};

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let k = 3u32;

    let mut t = Table::new(
        &format!("Fig. 5 — average FPR (k = {k}, n = {n})"),
        &[
            "memory (Mb)",
            "CBF",
            "MPCBF-1 w=16",
            "MPCBF-1 w=32",
            "MPCBF-1 w=64",
            "MPCBF-2 w=64",
            "CBF/MPCBF-1(64)",
        ],
    );
    for mb in [4.0f64, 5.0, 6.0, 7.0, 8.0] {
        let big_m = (mb * 1e6) as u64;
        let f_cbf = cbf::fpr(n, big_m / 4, k);
        let f16 = mpcbf::fpr_mpcbf1_avg(n, big_m / 16, 16, k);
        let f32 = mpcbf::fpr_mpcbf1_avg(n, big_m / 32, 32, k);
        let f64_ = mpcbf::fpr_mpcbf1_avg(n, big_m / 64, 64, k);
        let f2 = mpcbf::fpr_mpcbf_g_avg(n, big_m / 64, 64, k, 2);
        t.row(vec![
            format!("{mb:.1}"),
            sci(f_cbf),
            sci(f16),
            sci(f32),
            sci(f64_),
            sci(f2),
            fixed(f_cbf / f64_, 1),
        ]);
    }
    t.finish(&args.out_dir, "fig05_mpcbf_fpr", args.quiet);
}
