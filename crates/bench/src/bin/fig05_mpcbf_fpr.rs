//! Figure 5: analytical false-positive rates of CBF, MPCBF-1 and MPCBF-2
//! with k = 3 and different word sizes.
//!
//! Uses the paper's average-load form (b1 = w − k·n/l, the expression
//! plotted in Fig. 5) and shows the headline analytical claim: "MPCBF-1
//! has an order of magnitude lower false positive rate than the standard
//! CBF, and increasing the word size can decrease the average rate".

use mpcbf_analysis::{cbf, mpcbf};
use mpcbf_bench::report::{fixed, sci};
use mpcbf_bench::{Args, Table};

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let k = 3u32;

    let mut t = Table::new(
        &format!("Fig. 5 — average FPR (k = {k}, n = {n})"),
        &[
            "memory (Mb)",
            "CBF",
            "MPCBF-1 w=16",
            "MPCBF-1 w=32",
            "MPCBF-1 w=64",
            "MPCBF-2 w=64",
            "CBF/MPCBF-1(64)",
        ],
    );
    for mb in [4.0f64, 5.0, 6.0, 7.0, 8.0] {
        let big_m = (mb * 1e6) as u64;
        let f_cbf = cbf::fpr(n, big_m / 4, k);
        // The average-load form is undefined when b1 = w − k·n/l < 1 (e.g.
        // when --scale pushes n past the word budget); render those cells
        // as "—" instead of aborting the whole sweep.
        let cell = |f: Result<f64, mpcbf::B1Underflow>| f.map(sci).unwrap_or_else(|_| "—".into());
        let f16 = mpcbf::try_fpr_mpcbf1_avg(n, big_m / 16, 16, k);
        let f32 = mpcbf::try_fpr_mpcbf1_avg(n, big_m / 32, 32, k);
        let f64_ = mpcbf::try_fpr_mpcbf1_avg(n, big_m / 64, 64, k);
        let f2 = mpcbf::try_fpr_mpcbf_g_avg(n, big_m / 64, 64, k, 2);
        let ratio = f64_
            .map(|f| fixed(f_cbf / f, 1))
            .unwrap_or_else(|_| "—".into());
        t.row(vec![
            format!("{mb:.1}"),
            sci(f_cbf),
            cell(f16),
            cell(f32),
            cell(f64_),
            cell(f2),
            ratio,
        ]);
    }
    t.finish(&args.out_dir, "fig05_mpcbf_fpr", args.quiet);
}
