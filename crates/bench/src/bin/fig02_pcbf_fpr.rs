//! Figure 2: analytical false-positive rates of CBF, PCBF-1 and PCBF-2
//! with different word sizes.
//!
//! Reproduces the paper's two observations: PCBF trails the standard CBF
//! at every word size, and the gap shrinks as the word grows (§III.A.1:
//! "when w increases the false positive rate of PCBF-1 converges to that
//! of CBF").

use mpcbf_analysis::{cbf, pcbf};
use mpcbf_bench::report::sci;
use mpcbf_bench::{Args, Table};

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let k = 3u32;

    // Panel A: word-size sweep at fixed memory (4 Mb).
    let big_m = 4_000_000u64;
    let mut t = Table::new(
        &format!("Fig. 2a — FPR vs word size (M = 4 Mb, n = {n}, k = {k})"),
        &["w (bits)", "CBF", "PCBF-1", "PCBF-2"],
    );
    let f_cbf = cbf::fpr(n, big_m / 4, k);
    for w in [16u32, 32, 64, 128, 256] {
        let l = big_m / u64::from(w);
        t.row(vec![
            w.to_string(),
            sci(f_cbf),
            sci(pcbf::fpr_pcbf1(n, l, w, k)),
            sci(pcbf::fpr_pcbf_g(n, l, w, k, 2)),
        ]);
    }
    t.finish(&args.out_dir, "fig02a_fpr_vs_word_size", args.quiet);

    // Panel B: memory sweep at the paper's main word size (w = 64).
    let w = 64u32;
    let mut t = Table::new(
        &format!("Fig. 2b — FPR vs memory (w = {w}, n = {n}, k = {k})"),
        &["memory (Mb)", "CBF", "PCBF-1", "PCBF-2"],
    );
    for mb in [4.0f64, 5.0, 6.0, 7.0, 8.0] {
        let big_m = (mb * 1e6) as u64;
        let l = big_m / u64::from(w);
        t.row(vec![
            format!("{mb:.1}"),
            sci(cbf::fpr(n, big_m / 4, k)),
            sci(pcbf::fpr_pcbf1(n, l, w, k)),
            sci(pcbf::fpr_pcbf_g(n, l, w, k, 2)),
        ]);
    }
    t.finish(&args.out_dir, "fig02b_fpr_vs_memory", args.quiet);
}
