//! Figure 6: word-overflow probability of MPCBF-1 with n = 100 000 and
//! k = 3, for w = 32 and w = 64.
//!
//! Plots (as rows) the paper's Eq. (6) Chernoff-style bound next to the
//! exact binomial tail and the union bound over all words, across n_max;
//! marks the Eq.-(11) heuristic choice. Reproduces the paper's point that
//! w = 64 "gives more degrees of freedom on the choice of n_max and lower
//! word overflow probability".

use mpcbf_analysis::heuristic::n_max_heuristic;
use mpcbf_analysis::overflow;
use mpcbf_bench::report::sci;
use mpcbf_bench::{Args, Table};

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let big_m = 4_000_000u64;

    for w in [32u64, 64] {
        let l = big_m / w;
        let pick = n_max_heuristic(n, l, 1);
        let mut t = Table::new(
            &format!(
                "Fig. 6 — overflow probability (w = {w}, l = {l}, n = {n}; Eq. 11 picks n_max = {pick})"
            ),
            &[
                "n_max",
                "Eq.(6) bound",
                "exact P[X>=n_max]",
                "P[any word overflows]",
                "heuristic",
            ],
        );
        for n_max in 2..=20u32 {
            t.row(vec![
                n_max.to_string(),
                sci(overflow::overflow_bound_mpcbf1(n, l, n_max)),
                sci(overflow::overflow_exact(n, l, n_max)),
                sci(overflow::any_word_overflow(n, l, n_max)),
                if u64::from(n_max) == pick {
                    "<- Eq.(11)"
                } else {
                    ""
                }
                .to_string(),
            ]);
        }
        t.finish(&args.out_dir, &format!("fig06_overflow_w{w}"), args.quiet);
    }
}
