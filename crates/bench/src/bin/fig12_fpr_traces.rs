//! Figure 12: false-positive rates with k = 3 on the (synthetic stand-in
//! for the) CAIDA IP traces, memory 8–16 Mb.
//!
//! Protocol (§IV.D): insert 200 K unique flows, run one 40 K-delete /
//! 40 K-insert update period, then feed all 5 585 633 trace records as
//! queries. To reproduce: CBF's FPR drops ~0.66 % → ~0.08 % over the
//! range, MPCBF-2 runs several-fold lower, MPCBF-1 lands close to CBF.

use mpcbf_bench::report::sci;
use mpcbf_bench::runner::Workload;
use mpcbf_bench::{run_suite, Args, Contender, Table};
use mpcbf_workloads::flowtrace::{FlowTrace, FlowTraceSpec};

fn main() {
    let args = Args::parse();
    let trials = args.trials_or(1); // the trace is one fixed dataset
    let spec = FlowTraceSpec::default().scaled_down(args.scale);
    let n = spec.test_set as u64;

    eprintln!(
        "generating trace: {} records, {} unique flows ...",
        spec.total_records, spec.unique_flows
    );
    let trace = FlowTrace::generate(&spec);

    let mut t = Table::new(
        &format!(
            "Fig. 12 — FPR on IP traces (k = 3, {} flows inserted, {} query records)",
            n,
            trace.records.len()
        ),
        &[
            "memory (Mb)",
            "CBF",
            "PCBF-1",
            "PCBF-2",
            "MPCBF-1",
            "MPCBF-2",
        ],
    );
    for mb in [8.0f64, 10.0, 12.0, 14.0, 16.0] {
        let big_m = ((mb * 1e6) as u64) / args.scale;
        let rows = run_suite(&Contender::paper_five(), big_m, n, 3, trials, |_| {
            Workload {
                inserts: trace.test_set.clone(),
                churn: trace.churn.clone(),
                queries: trace.records.clone(),
            }
        });
        let cell = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .map(|r| sci(r.fpr))
                .unwrap_or_else(|| "-".to_string())
        };
        t.row(vec![
            format!("{mb:.1}"),
            cell("CBF"),
            cell("PCBF-1"),
            cell("PCBF-2"),
            cell("MPCBF-1"),
            cell("MPCBF-2"),
        ]);
    }
    t.finish(&args.out_dir, "fig12_fpr_traces", args.quiet);
}
