//! Table IV: reduce-side join performance in MapReduce with CBF, MPCBF-1
//! and MPCBF-2 pushdown filters (plus the unfiltered baseline).
//!
//! Setup (§V): the NBER-shaped patent dataset — ~16.5 M citation records
//! joined against ~71 K key patents; the filter is built from the patent
//! side and broadcast to map tasks, which drop citations whose key fails
//! the test. Reported per filter, as the paper's table: join FPR, map
//! output records (and the reduction vs CBF), and total execution time.
//!
//! The filter memory is deliberately tight (the broadcast must stay small
//! in the paper's Hadoop setting), which is why the CBF join FPR is tens
//! of percent; MPCBF at the same memory cuts it severalfold.

use mpcbf_bench::report::fixed;
use mpcbf_bench::{Args, Table};
use mpcbf_core::{Cbf, Filter, Mpcbf, MpcbfConfig};
use mpcbf_hash::Murmur3;
use mpcbf_mapreduce::join::KeyFilter;
use mpcbf_mapreduce::{reduce_side_join, JoinConfig};
use mpcbf_workloads::patents::{PatentDataset, PatentSpec};

fn main() {
    let args = Args::parse();
    // The dataset defaults to 1/8 of NBER scale (~2 M citation rows, a
    // minute-scale run); --scale multiplies that reduction further.
    let spec = PatentSpec::default().scaled_down(8 * args.scale);

    eprintln!(
        "generating patent data: {} citations, {} key patents ...",
        spec.citations, spec.key_patents
    );
    let data = PatentDataset::generate(&spec);
    let n_keys = data.patents.len() as u64;
    // Tight broadcast budget: ~20 bits per key (CBF leaks visibly here).
    let big_m = (20 * n_keys).max(4096);

    let left: Vec<(u32, u16)> = data.patents.iter().map(|p| (p.id, p.year)).collect();
    let right: Vec<(u32, u32)> = data.citations.iter().map(|c| (c.cited, c.citing)).collect();

    let trials = args.trials_or(3);
    let mut t = Table::new(
        &format!(
            "Table IV — reduce-side join ({} citations, {} key patents, filter M = {} bits)",
            right.len(),
            n_keys,
            big_m
        ),
        &[
            "filter",
            "join FPR (%)",
            "map outputs",
            "outputs vs no-filter (%)",
            "total time (ms)",
            "rows",
        ],
    );

    let cfg = JoinConfig::default();
    let mut baseline_outputs = 0u64;
    let mut expected_rows: Option<u64> = None;

    /// A pushdown filter plus the keys it refused at build time: refused
    /// keys always pass, so a capacity-tight filter can never drop a join
    /// match (the whitelist is tiny — a handful of keys — and would ride
    /// along in the same broadcast in a real deployment).
    struct WithExceptions<F> {
        filter: F,
        exceptions: std::collections::HashSet<Vec<u8>>,
    }
    impl<F: KeyFilter> KeyFilter for WithExceptions<F> {
        fn test(&self, key: &[u8]) -> bool {
            self.filter.test(key) || self.exceptions.contains(key)
        }
    }

    // Build each filter from the left (patent) side.
    enum Which {
        None,
        Cbf,
        Mp(u32),
    }
    for which in [Which::None, Which::Cbf, Which::Mp(1), Which::Mp(2)] {
        let (name, filter): (String, Option<Box<dyn KeyFilter>>) = match which {
            Which::None => ("no filter".to_string(), None),
            Which::Cbf => {
                let mut f = Cbf::<Murmur3>::with_memory(big_m, 3, 77);
                for (k, _) in &left {
                    f.insert(k).unwrap();
                }
                ("CBF".to_string(), Some(Box::new(f)))
            }
            Which::Mp(g) => {
                let config = MpcbfConfig::builder()
                    .memory_bits(big_m)
                    .expected_items(n_keys)
                    .hashes(3)
                    .accesses(g)
                    .seed(77)
                    .build()
                    .expect("join filter shape");
                let mut f: Mpcbf<u64> = Mpcbf::new(config);
                let mut exceptions = std::collections::HashSet::new();
                for (k, _) in &left {
                    if f.insert(k).is_err() {
                        exceptions.insert(mpcbf_hash::Key::key_bytes(k).as_slice().to_vec());
                    }
                }
                if !exceptions.is_empty() {
                    eprintln!(
                        "note: MPCBF-{g} whitelisted {} overflow-refused key(s)",
                        exceptions.len()
                    );
                }
                (
                    format!("MPCBF-{g}"),
                    Some(Box::new(WithExceptions {
                        filter: f,
                        exceptions,
                    })),
                )
            }
        };

        // Average total time over trials; counters are deterministic.
        let mut total_ms = 0.0;
        let mut last_stats = None;
        let mut rows_count = 0u64;
        for _ in 0..trials {
            let (rows, stats) =
                reduce_side_join(&cfg, left.clone(), right.clone(), filter.as_deref());
            total_ms += stats.job.total_wall.as_secs_f64() * 1e3;
            rows_count = rows.len() as u64;
            last_stats = Some(stats);
        }
        let stats = last_stats.expect("at least one trial");
        let mean_ms = total_ms / trials as f64;

        match expected_rows {
            None => expected_rows = Some(rows_count),
            Some(e) => assert_eq!(e, rows_count, "{name}: join result changed!"),
        }
        if matches!(which, Which::None) {
            baseline_outputs = stats.job.map_output_records;
        }
        let reduction = if baseline_outputs > 0 {
            100.0 * (1.0 - stats.job.map_output_records as f64 / baseline_outputs as f64)
        } else {
            0.0
        };
        t.row(vec![
            name,
            fixed(stats.join_fpr() * 100.0, 1),
            stats.job.map_output_records.to_string(),
            fixed(reduction, 1),
            fixed(mean_ms, 0),
            rows_count.to_string(),
        ]);
    }
    t.finish(&args.out_dir, "table4_mapreduce_join", args.quiet);
}
