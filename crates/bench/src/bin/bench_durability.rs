//! Durability overhead benchmark: insert throughput per fsync policy
//! and recovery time as a function of WAL length.
//!
//! ```text
//! cargo run --release -p mpcbf-bench --bin bench_durability
//! cargo run --release -p mpcbf-bench --bin bench_durability -- --scale 10
//! ```
//!
//! Emits `BENCH_durability.json` (consumed by the CI durability job) with
//! two sections:
//!
//! * `throughput` — durable scalar inserts per second under `Always`,
//!   `EveryN(64)` and `Interval(2ms)` fsync, against the same filter
//!   shape, so the cost of the ack⟹durable guarantee is visible;
//! * `recovery` — wall-clock `open_or_recover` time versus the number of
//!   WAL records replayed (no snapshot taken, so every record replays),
//!   plus the scrub verdict.

use mpcbf_bench::Args;
use mpcbf_core::{Mpcbf, MpcbfConfig};
use mpcbf_durability::{DurabilityOptions, DurableFilter, FsyncPolicy};
use mpcbf_hash::Murmur3;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mpcbf-bench-durability-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(items: u64) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(16 * items.max(1_000))
        .expected_items(items.max(1_000))
        .hashes(3)
        .seed(7)
        .build()
        .expect("shape")
}

struct ThroughputRow {
    policy: String,
    ops: u64,
    ops_per_sec: f64,
}

struct RecoveryRow {
    wal_records: u64,
    millis: f64,
    records_replayed: u64,
    scrub_clean: bool,
}

fn throughput(policy: FsyncPolicy, ops: u64) -> ThroughputRow {
    let dir = scratch_dir(&policy.name());
    let cfg = config(ops);
    let opts = DurabilityOptions::new(&dir).fsync(policy);
    let mut durable: DurableFilter<Mpcbf<u64, Murmur3>> =
        DurableFilter::create(Mpcbf::new(cfg), opts).expect("create");
    let start = Instant::now();
    for i in 0..ops {
        let _ = durable.insert_bytes(&i.to_le_bytes());
    }
    durable.sync().expect("final sync");
    let elapsed = start.elapsed().as_secs_f64();
    drop(durable);
    std::fs::remove_dir_all(&dir).expect("scratch cleanup");
    ThroughputRow {
        policy: policy.name(),
        ops,
        ops_per_sec: ops as f64 / elapsed.max(1e-9),
    }
}

fn recovery(wal_records: u64) -> RecoveryRow {
    let dir = scratch_dir(&format!("recover-{wal_records}"));
    let cfg = config(wal_records);
    // Relaxed fsync keeps setup fast; the final sync makes it all durable.
    let opts = DurabilityOptions::new(&dir).fsync(FsyncPolicy::EveryN(1024));
    let mut durable: DurableFilter<Mpcbf<u64, Murmur3>> =
        DurableFilter::create(Mpcbf::new(cfg), opts).expect("create");
    for i in 0..wal_records {
        let _ = durable.insert_bytes(&i.to_le_bytes());
    }
    durable.sync().expect("final sync");
    drop(durable); // crash with the whole history in the WAL

    let start = Instant::now();
    let (_, report) =
        DurableFilter::open_or_recover(DurabilityOptions::new(&dir), || -> Mpcbf<u64, Murmur3> {
            Mpcbf::new(cfg)
        })
        .expect("recovery");
    let millis = start.elapsed().as_secs_f64() * 1e3;
    std::fs::remove_dir_all(&dir).expect("scratch cleanup");
    RecoveryRow {
        wal_records,
        millis,
        records_replayed: report.records_replayed,
        scrub_clean: report.scrub_clean,
    }
}

fn to_json(throughputs: &[ThroughputRow], recoveries: &[RecoveryRow]) -> String {
    let mut json = String::with_capacity(4 * 1024);
    json.push_str("{\n  \"throughput\": [\n");
    for (i, r) in throughputs.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"policy\": \"{}\", \"ops\": {}, \"ops_per_sec\": {:.1}}}",
            r.policy, r.ops, r.ops_per_sec
        );
        json.push_str(if i + 1 < throughputs.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"recovery\": [\n");
    for (i, r) in recoveries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"wal_records\": {}, \"millis\": {:.2}, \"records_replayed\": {}, \
             \"scrub_clean\": {}}}",
            r.wal_records, r.millis, r.records_replayed, r.scrub_clean
        );
        json.push_str(if i + 1 < recoveries.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    let args = Args::parse();
    let ops = args.scaled(8_000);

    println!("durable insert throughput ({ops} scalar inserts per policy):");
    let throughputs: Vec<ThroughputRow> = [
        FsyncPolicy::Always,
        FsyncPolicy::EveryN(64),
        FsyncPolicy::Interval(Duration::from_millis(2)),
    ]
    .into_iter()
    .map(|policy| throughput(policy, ops))
    .collect();
    for r in &throughputs {
        println!("  {:<16} {:>12.0} ops/s", r.policy, r.ops_per_sec);
    }

    println!("recovery time vs WAL length (no snapshot, full replay):");
    let recoveries: Vec<RecoveryRow> = [1u64, 4, 16]
        .iter()
        .map(|&m| recovery(args.scaled(2_000) * m))
        .collect();
    for r in &recoveries {
        println!(
            "  {:>8} records  {:>9.2} ms  replayed {}  scrub {}",
            r.wal_records,
            r.millis,
            r.records_replayed,
            if r.scrub_clean { "clean" } else { "DIRTY" }
        );
        assert!(r.scrub_clean, "recovered image must scrub clean");
        assert_eq!(
            r.records_replayed, r.wal_records,
            "without a snapshot every WAL record must replay"
        );
    }

    let json = to_json(&throughputs, &recoveries);
    std::fs::write("BENCH_durability.json", &json).expect("write BENCH_durability.json");
    println!("wrote BENCH_durability.json");
}
