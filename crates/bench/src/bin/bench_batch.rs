//! Scalar-vs-batch throughput at the Table II load points, emitted as
//! `BENCH_batch.json`.
//!
//! For MPCBF-1, MPCBF-2 and CBF at the paper's Table II configuration
//! (M = 8 Mb, n = 100 K, k = 3), measures queries/sec and update
//! pairs/sec through (a) the scalar loop and (b) the fused batch pipeline
//! (one [`PlanBuffer`] held across every chunk) at batch sizes 1, 8, 64
//! and 512, and reports the batch/scalar speedup per size. A fourth
//! filter row, `MPCBF-1/dram` (M = 512 Mb, n = 6.4 M, same bits/item),
//! spills far past last-level cache with a query stream too wide to stay
//! resident — the DRAM-bound regime the paper's DDR3 setting implies and
//! the one the interleaved word walks are built for (the Table II filter
//! is 1 MB and cache-resident, so its batch ratios are bounded by hashing
//! throughput, not memory-level parallelism). The JSON is hand-written
//! (no serde in the workspace) and lands in the current directory; run
//! from the repo root.
//!
//! With `--gate`, the binary instead *reads* the committed
//! `BENCH_batch.json`, re-measures the MPCBF-1 query leg, and exits
//! non-zero if the batch-64 speedup fell below the recorded baseline
//! (with a noise-tolerance factor) — the CI regression gate.

use mpcbf_bench::report::fixed;
use mpcbf_bench::Args;
use mpcbf_core::{Cbf, CountingFilter, Mpcbf, MpcbfConfig, PlanBuffer};
use mpcbf_hash::Murmur3;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

/// Batch-1 must degrade to the scalar path (`SMALL_BATCH`), so its only
/// costs over the scalar loop are one `Vec` allocation per call and the
/// `OpCost` materialisation the batch contract requires (the bare scalar
/// loop lets the optimiser discard the accounting). That bounds batch-1
/// around 0.6–0.9x; anything below this floor means the degrade is
/// broken (the pre-fusion pipeline measured 0.51x on MPCBF-1 queries and
/// 0.32x on CBF queries).
const BATCH1_FLOOR: f64 = 0.5;

/// A gated re-measurement may be this much below the recorded baseline
/// before failing — headroom for single-run noise on shared CI hosts.
const GATE_TOLERANCE: f64 = 0.7;

/// Runs `pass` (one full pass returning its op count) repeatedly for at
/// least `budget`, returning ops/sec.
fn ops_per_sec(budget: Duration, mut pass: impl FnMut() -> u64) -> f64 {
    let _ = pass(); // warm-up: touch every word once
    let start = Instant::now();
    let mut ops = 0u64;
    while start.elapsed() < budget {
        ops += pass();
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

struct Measurement {
    filter: String,
    op: String,
    scalar: f64,
    /// Parallel to [`BATCH_SIZES`].
    batched: [f64; 4],
}

impl Measurement {
    fn speedup(&self, size_idx: usize) -> f64 {
        self.batched[size_idx] / self.scalar
    }
}

fn measure<F: CountingFilter>(
    name: &str,
    filter: &mut F,
    members: &[[u8; 8]],
    queries: &[[u8; 8]],
    churn: &[[u8; 8]],
    budget: Duration,
) -> Vec<Measurement> {
    for k in members {
        filter.insert_bytes(k).expect("pre-load insert");
    }
    let query_views: Vec<&[u8]> = queries.iter().map(|k| k.as_slice()).collect();
    let churn_views: Vec<&[u8]> = churn.iter().map(|k| k.as_slice()).collect();

    let scalar_q = ops_per_sec(budget, || {
        let mut hits = 0u64;
        for k in &query_views {
            hits += u64::from(filter.contains_bytes(k));
        }
        black_box(hits);
        query_views.len() as u64
    });
    let mut batched_q = [0f64; 4];
    for (i, &batch) in BATCH_SIZES.iter().enumerate() {
        let mut plans = PlanBuffer::new();
        batched_q[i] = ops_per_sec(budget, || {
            for chunk in query_views.chunks(batch) {
                black_box(filter.contains_batch_with(chunk, &mut plans));
            }
            query_views.len() as u64
        });
    }

    // One "update" op = one insert + one matching remove (net-zero state,
    // so every pass sees the identical load point).
    let scalar_u = ops_per_sec(budget, || {
        for k in &churn_views {
            filter.insert_bytes(k).expect("insert");
        }
        for k in &churn_views {
            filter.remove_bytes(k).expect("remove");
        }
        churn_views.len() as u64
    });
    let mut batched_u = [0f64; 4];
    for (i, &batch) in BATCH_SIZES.iter().enumerate() {
        let mut plans = PlanBuffer::new();
        batched_u[i] = ops_per_sec(budget, || {
            for chunk in churn_views.chunks(batch) {
                for r in filter.insert_batch_with(chunk, &mut plans).0 {
                    r.expect("insert");
                }
            }
            for chunk in churn_views.chunks(batch) {
                for r in filter.remove_batch_with(chunk, &mut plans).0 {
                    r.expect("remove");
                }
            }
            churn_views.len() as u64
        });
    }

    vec![
        Measurement {
            filter: name.to_string(),
            op: "query".to_string(),
            scalar: scalar_q,
            batched: batched_q,
        },
        Measurement {
            filter: name.to_string(),
            op: "update".to_string(),
            scalar: scalar_u,
            batched: batched_u,
        },
    ]
}

/// Pulls the recorded MPCBF-1 query batch-64 speedup out of a previously
/// written `BENCH_batch.json` (hand-rolled like the writer: find the
/// MPCBF-1 query result line, then the `"64"` entry of its speedup map).
fn baseline_query_speedup_64(json: &str) -> Option<f64> {
    let line = json
        .lines()
        .find(|l| l.contains("\"filter\": \"MPCBF-1\"") && l.contains("\"op\": \"query\""))?;
    let speedups = line.split("\"speedup\": {").nth(1)?;
    let value = speedups.split("\"64\": ").nth(1)?;
    value
        .split(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn main() {
    let args = Args::parse();
    let big_m = 8_000_000u64 / args.scale;
    let n = args.scaled(100_000);
    let k = 3u32;
    let budget = Duration::from_millis(if args.scale > 1 { 120 } else { 300 });

    let members: Vec<[u8; 8]> = (0..n).map(|i| i.to_le_bytes()).collect();
    // 80/20 member/stranger query mix (§IV.A), deterministically interleaved.
    let queries: Vec<[u8; 8]> = (0..args.scaled(40_000))
        .map(|i| {
            if i % 5 == 4 {
                (10_000_000 + i).to_le_bytes()
            } else {
                (i % n).to_le_bytes()
            }
        })
        .collect();
    let churn: Vec<[u8; 8]> = (50_000_000..50_000_000 + args.scaled(4_096))
        .map(|i| i.to_le_bytes())
        .collect();

    let mpcbf = |g: u32| {
        Mpcbf::<u64, Murmur3>::new(
            MpcbfConfig::builder()
                .memory_bits(big_m)
                .expected_items(n)
                .hashes(k)
                .accesses(g)
                .seed(1)
                .build()
                .unwrap(),
        )
    };

    if args.gate {
        // Regression gate: re-measure only the MPCBF-1 query leg and
        // compare against the committed baseline; never rewrites the JSON.
        let recorded = std::fs::read_to_string("BENCH_batch.json")
            .ok()
            .as_deref()
            .and_then(baseline_query_speedup_64)
            .unwrap_or_else(|| {
                eprintln!("gate: no MPCBF-1 query baseline in BENCH_batch.json");
                std::process::exit(2);
            });
        let measured = measure("MPCBF-1", &mut mpcbf(1), &members, &queries, &churn, budget)
            .into_iter()
            .find(|m| m.op == "query")
            .map(|m| m.speedup(2))
            .expect("query measurement");
        let floor = recorded * GATE_TOLERANCE;
        println!(
            "gate: MPCBF-1 batch-64 query speedup measured {}x, recorded baseline {}x \
             (floor {}x)",
            fixed(measured, 3),
            fixed(recorded, 3),
            fixed(floor, 3),
        );
        if measured < floor {
            eprintln!("gate: FAIL — batch query speedup regressed below the recorded baseline");
            std::process::exit(1);
        }
        println!("gate: OK");
        return;
    }

    let mut all = Vec::new();
    all.extend(measure(
        "MPCBF-1",
        &mut mpcbf(1),
        &members,
        &queries,
        &churn,
        budget,
    ));
    all.extend(measure(
        "MPCBF-2",
        &mut mpcbf(2),
        &members,
        &queries,
        &churn,
        budget,
    ));
    all.extend(measure(
        "CBF",
        &mut Cbf::<Murmur3>::with_memory(big_m, k, 1),
        &members,
        &queries,
        &churn,
        budget,
    ));

    // DRAM-resident load point: same bits/item as Table II, 64x the
    // memory, and a query stream touching ~64x more distinct lines than
    // last-level cache holds — here the interleaved walks overlap real
    // DRAM misses instead of L2 hits.
    let dram_m = 512_000_000u64 / args.scale;
    let dram_n = args.scaled(6_400_000);
    let dram_members: Vec<[u8; 8]> = (0..dram_n).map(|i| i.to_le_bytes()).collect();
    let dram_queries: Vec<[u8; 8]> = (0..args.scaled(1_000_000))
        .map(|i| {
            if i % 5 == 4 {
                (10_000_000_000 + i).to_le_bytes()
            } else {
                (i % dram_n).to_le_bytes()
            }
        })
        .collect();
    let mut dram_filter = Mpcbf::<u64, Murmur3>::new(
        MpcbfConfig::builder()
            .memory_bits(dram_m)
            .expected_items(dram_n)
            .hashes(k)
            .accesses(1)
            .seed(1)
            .build()
            .unwrap(),
    );
    all.extend(measure(
        "MPCBF-1/dram",
        &mut dram_filter,
        &dram_members,
        &dram_queries,
        &churn,
        budget,
    ));

    // Sizes below SMALL_BATCH degrade to the scalar loop, so batch-1 must
    // track scalar throughput; a collapse here means the degrade broke.
    for m in &all {
        assert!(
            m.speedup(0) >= BATCH1_FLOOR,
            "{} {}: batch-1 speedup {} fell below the scalar-degrade floor {}",
            m.filter,
            m.op,
            fixed(m.speedup(0), 3),
            BATCH1_FLOOR,
        );
    }

    let speedup_64 = |name: &str| {
        all.iter()
            .find(|m| m.filter == name && m.op == "query")
            .map(|m| m.speedup(2))
            .unwrap_or(0.0)
    };
    let note = format!(
        "measured MPCBF-1 query speedup at batch 64: {}x DRAM-resident \
         (512 Mb filter), {}x cache-resident (Table II, bounded by \
         hashing throughput); single-core run; fused pipeline: reusable \
         plan buffer, per-op kernel routing, interleaved word walks; \
         batch sizes below {} degrade to the scalar loop",
        fixed(speedup_64("MPCBF-1/dram"), 2),
        fixed(speedup_64("MPCBF-1"), 2),
        mpcbf_core::SMALL_BATCH,
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"memory_bits\": {big_m}, \"n\": {n}, \"k\": {k}, \
         \"query_mix\": \"80% member\", \"batch_sizes\": [1, 8, 64, 512]}},"
    );
    let _ = writeln!(json, "  \"note\": \"{note}\",");
    json.push_str("  \"results\": [\n");
    for (i, m) in all.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"filter\": \"{}\", \"op\": \"{}\", \"scalar_ops_per_sec\": {:.0}, \
             \"batch_ops_per_sec\": {{",
            m.filter, m.op, m.scalar
        );
        for (j, &batch) in BATCH_SIZES.iter().enumerate() {
            let _ = write!(
                json,
                "\"{batch}\": {:.0}{}",
                m.batched[j],
                if j + 1 < BATCH_SIZES.len() { ", " } else { "" }
            );
        }
        json.push_str("}, \"speedup\": {");
        for (j, &batch) in BATCH_SIZES.iter().enumerate() {
            let _ = write!(
                json,
                "\"{batch}\": {}{}",
                fixed(m.speedup(j), 3),
                if j + 1 < BATCH_SIZES.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(json, "}}}}{}", if i + 1 < all.len() { "," } else { "" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    if !args.quiet {
        println!("{json}");
        println!("wrote BENCH_batch.json");
    }
}
