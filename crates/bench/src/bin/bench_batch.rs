//! Scalar-vs-batch throughput at the Table II load points, emitted as
//! `BENCH_batch.json`.
//!
//! For MPCBF-1, MPCBF-2 and CBF at the paper's Table II configuration
//! (M = 8 Mb, n = 100 K, k = 3), measures queries/sec and update
//! pairs/sec through (a) the scalar loop and (b) the batch pipeline at
//! batch sizes 1, 8, 64 and 512, and reports the batch/scalar speedup per
//! size. The JSON is hand-written (no serde in the workspace) and lands
//! in the current directory; run from the repo root.

use mpcbf_bench::report::fixed;
use mpcbf_bench::Args;
use mpcbf_core::{Cbf, CountingFilter, Mpcbf, MpcbfConfig};
use mpcbf_hash::Murmur3;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

/// Runs `pass` (one full pass returning its op count) repeatedly for at
/// least `budget`, returning ops/sec.
fn ops_per_sec(budget: Duration, mut pass: impl FnMut() -> u64) -> f64 {
    let _ = pass(); // warm-up: touch every word once
    let start = Instant::now();
    let mut ops = 0u64;
    while start.elapsed() < budget {
        ops += pass();
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

struct Measurement {
    filter: String,
    op: String,
    scalar: f64,
    /// Parallel to [`BATCH_SIZES`].
    batched: [f64; 4],
}

impl Measurement {
    fn speedup(&self, size_idx: usize) -> f64 {
        self.batched[size_idx] / self.scalar
    }
}

fn measure<F: CountingFilter>(
    name: &str,
    filter: &mut F,
    members: &[[u8; 8]],
    queries: &[[u8; 8]],
    churn: &[[u8; 8]],
    budget: Duration,
) -> Vec<Measurement> {
    for k in members {
        filter.insert_bytes(k).expect("pre-load insert");
    }
    let query_views: Vec<&[u8]> = queries.iter().map(|k| k.as_slice()).collect();
    let churn_views: Vec<&[u8]> = churn.iter().map(|k| k.as_slice()).collect();

    let scalar_q = ops_per_sec(budget, || {
        let mut hits = 0u64;
        for k in &query_views {
            hits += u64::from(filter.contains_bytes(k));
        }
        black_box(hits);
        query_views.len() as u64
    });
    let mut batched_q = [0f64; 4];
    for (i, &batch) in BATCH_SIZES.iter().enumerate() {
        batched_q[i] = ops_per_sec(budget, || {
            for chunk in query_views.chunks(batch) {
                black_box(filter.contains_batch_cost(chunk));
            }
            query_views.len() as u64
        });
    }

    // One "update" op = one insert + one matching remove (net-zero state,
    // so every pass sees the identical load point).
    let scalar_u = ops_per_sec(budget, || {
        for k in &churn_views {
            filter.insert_bytes(k).expect("insert");
        }
        for k in &churn_views {
            filter.remove_bytes(k).expect("remove");
        }
        churn_views.len() as u64
    });
    let mut batched_u = [0f64; 4];
    for (i, &batch) in BATCH_SIZES.iter().enumerate() {
        batched_u[i] = ops_per_sec(budget, || {
            for chunk in churn_views.chunks(batch) {
                for r in filter.insert_batch_cost(chunk).0 {
                    r.expect("insert");
                }
            }
            for chunk in churn_views.chunks(batch) {
                for r in filter.remove_batch_cost(chunk).0 {
                    r.expect("remove");
                }
            }
            churn_views.len() as u64
        });
    }

    vec![
        Measurement {
            filter: name.to_string(),
            op: "query".to_string(),
            scalar: scalar_q,
            batched: batched_q,
        },
        Measurement {
            filter: name.to_string(),
            op: "update".to_string(),
            scalar: scalar_u,
            batched: batched_u,
        },
    ]
}

fn main() {
    let args = Args::parse();
    let big_m = 8_000_000u64 / args.scale;
    let n = args.scaled(100_000);
    let k = 3u32;
    let budget = Duration::from_millis(if args.scale > 1 { 120 } else { 300 });

    let members: Vec<[u8; 8]> = (0..n).map(|i| i.to_le_bytes()).collect();
    // 80/20 member/stranger query mix (§IV.A), deterministically interleaved.
    let queries: Vec<[u8; 8]> = (0..args.scaled(40_000))
        .map(|i| {
            if i % 5 == 4 {
                (10_000_000 + i).to_le_bytes()
            } else {
                (i % n).to_le_bytes()
            }
        })
        .collect();
    let churn: Vec<[u8; 8]> = (50_000_000..50_000_000 + args.scaled(4_096))
        .map(|i| i.to_le_bytes())
        .collect();

    let mpcbf = |g: u32| {
        Mpcbf::<u64, Murmur3>::new(
            MpcbfConfig::builder()
                .memory_bits(big_m)
                .expected_items(n)
                .hashes(k)
                .accesses(g)
                .seed(1)
                .build()
                .unwrap(),
        )
    };

    let mut all = Vec::new();
    all.extend(measure(
        "MPCBF-1",
        &mut mpcbf(1),
        &members,
        &queries,
        &churn,
        budget,
    ));
    all.extend(measure(
        "MPCBF-2",
        &mut mpcbf(2),
        &members,
        &queries,
        &churn,
        budget,
    ));
    all.extend(measure(
        "CBF",
        &mut Cbf::<Murmur3>::with_memory(big_m, k, 1),
        &members,
        &queries,
        &churn,
        budget,
    ));

    let mpcbf1_query_speedup_64 = all
        .iter()
        .find(|m| m.filter == "MPCBF-1" && m.op == "query")
        .map(|m| m.speedup(2))
        .unwrap_or(0.0);
    let note = format!(
        "measured MPCBF-1 query speedup at batch 64: {}x \
         (single-core run; prefetch feature {}; batch wins come from \
         hoisting hashing out of the probe loop and from cache-resident \
         word runs, and grow with memory latency)",
        fixed(mpcbf1_query_speedup_64, 2),
        if cfg!(feature = "prefetch") {
            "ON"
        } else {
            "OFF"
        },
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"config\": {{\"memory_bits\": {big_m}, \"n\": {n}, \"k\": {k}, \
         \"query_mix\": \"80% member\", \"batch_sizes\": [1, 8, 64, 512]}},"
    );
    let _ = writeln!(json, "  \"note\": \"{note}\",");
    json.push_str("  \"results\": [\n");
    for (i, m) in all.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"filter\": \"{}\", \"op\": \"{}\", \"scalar_ops_per_sec\": {:.0}, \
             \"batch_ops_per_sec\": {{",
            m.filter, m.op, m.scalar
        );
        for (j, &batch) in BATCH_SIZES.iter().enumerate() {
            let _ = write!(
                json,
                "\"{batch}\": {:.0}{}",
                m.batched[j],
                if j + 1 < BATCH_SIZES.len() { ", " } else { "" }
            );
        }
        json.push_str("}, \"speedup\": {");
        for (j, &batch) in BATCH_SIZES.iter().enumerate() {
            let _ = write!(
                json,
                "\"{batch}\": {}{}",
                fixed(m.speedup(j), 3),
                if j + 1 < BATCH_SIZES.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(json, "}}}}{}", if i + 1 < all.len() { "," } else { "" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    if !args.quiet {
        println!("{json}");
        println!("wrote BENCH_batch.json");
    }
}
