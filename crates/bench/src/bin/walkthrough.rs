//! Walkthrough: reproduces the paper's *worked examples* (Figs. 1, 3, 4)
//! from the live data structures, printing the actual bit layouts — a
//! correctness demonstration and a readable introduction to HCBF.
//!
//! ```text
//! cargo run --release -p mpcbf-bench --bin walkthrough
//! ```

use mpcbf_core::hcbf::HcbfWord;
use mpcbf_hash::budget::closed_form;

fn render_word16(w: &HcbfWord<u16>, b1: u32) -> String {
    let sizes = w.level_sizes(b1);
    let mut out = String::new();
    let mut start = 0u32;
    for (level, &size) in sizes.iter().enumerate() {
        out.push_str(&format!("v{}=[", level + 1));
        for i in 0..size {
            out.push(if w.raw() >> (start + i) & 1 == 1 {
                '1'
            } else {
                '0'
            });
        }
        out.push_str("] ");
        start += size;
    }
    if start < 16 {
        out.push_str(&format!("(unused: {} bits)", 16 - start));
    }
    out
}

fn main() {
    println!("== Fig. 1 — CBF vs PCBF-1 access bandwidth (n=6, m=16, k=3) ==");
    println!(
        "CBF:    3 memory accesses, {} hash bits  (3 x log2 16)",
        closed_form::cbf(3, 16)
    );
    println!(
        "PCBF-1: 1 memory access,  {} hash bits  (log2 4 + 3 x log2 4)",
        closed_form::pcbf(1, 3, 4, 16)
    );

    println!();
    println!("== Fig. 3(b) — improved HCBF in a 16-bit word (k=3, n_max=2) ==");
    let b1 = 16 - 3 * 2; // b_max = w − k·n_max = 10
    println!("b1 = 16 - 3*2 = {b1} first-level bits");
    let mut w: HcbfWord<u16> = HcbfWord::new();
    println!("empty:             {}", render_word16(&w, b1));

    println!("insert x0 -> bits {{0, 2, 4}}:");
    for p in [0u32, 2, 4] {
        w.increment(p, b1).unwrap();
        println!("  after bit {p}:    {}", render_word16(&w, b1));
    }
    println!("insert x5 -> bits {{4, 6, 8}}:");
    for p in [4u32, 6, 8] {
        w.increment(p, b1).unwrap();
        println!("  after bit {p}:    {}", render_word16(&w, b1));
    }
    println!(
        "counters: {:?}",
        (0..b1).map(|p| w.counter(p, b1)).collect::<Vec<_>>()
    );
    println!(
        "used {}/16 bits — \"the improved HCBF can fill the whole word and there is no remainder\"",
        w.used_bits(b1)
    );

    println!();
    println!("== Fig. 3 deletion — removing x5 restores the x0-only state ==");
    let snapshot = *w.raw();
    for p in [8u32, 6, 4] {
        w.decrement(p, b1).unwrap();
    }
    println!("after delete x5:   {}", render_word16(&w, b1));
    for p in [4u32, 6, 8] {
        w.increment(p, b1).unwrap();
    }
    assert_eq!(*w.raw(), snapshot, "re-insertion must be bit-identical");
    println!("re-insert x5:      bit-identical to the original word ✓");

    println!();
    println!("== Fig. 4 — four HCBF words, uneven hierarchy usage ==");
    let mut words: Vec<HcbfWord<u16>> = vec![HcbfWord::new(); 4];
    // Fill words 0 and 2 to capacity, leave 1 and 3 with headroom.
    for p in [0u32, 2, 4, 4, 6, 8] {
        words[0].increment(p, b1).unwrap();
        words[2].increment(p, b1).unwrap();
    }
    for p in [1u32, 3, 5] {
        words[1].increment(p, b1).unwrap();
        words[3].increment(p, b1).unwrap();
    }
    for (i, w) in words.iter().enumerate() {
        println!(
            "w{i}: {} — {} spare increment(s)",
            render_word16(w, b1),
            w.remaining_capacity(b1)
        );
    }
    println!("\n\"words w0 and w2 are full, while w1 and w3 can still accept three more membership bits\"");
}
