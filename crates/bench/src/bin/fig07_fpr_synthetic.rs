//! Figure 7: empirical false-positive rates on the synthetic workload
//! with k = 3 (panel a) and k = 4 (panel b), memory 4–8 Mb.
//!
//! The paper's observations to reproduce:
//! * FPR falls near-exponentially with memory for every filter;
//! * MPCBF falls faster than PCBF, and faster with larger g;
//! * at k = 3, MPCBF-1 and MPCBF-2 beat the standard CBF;
//! * at k = 4, MPCBF-1 is "a little larger" than CBF while MPCBF-2 still
//!   wins clearly.

use mpcbf_bench::report::sci;
use mpcbf_bench::runner::Workload;
use mpcbf_bench::{run_suite, Args, Contender, Table};
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};

fn main() {
    let args = Args::parse();
    let trials = args.trials_or(3);
    let n = args.scaled(100_000);

    for k in [3u32, 4] {
        let mut t = Table::new(
            &format!(
                "Fig. 7 — empirical FPR, synthetic strings (k = {k}, n = {n}, {trials} trials)"
            ),
            &[
                "memory (Mb)",
                "CBF",
                "PCBF-1",
                "PCBF-2",
                "MPCBF-1",
                "MPCBF-2",
            ],
        );
        for mb in [4.0f64, 5.0, 6.0, 7.0, 8.0] {
            let big_m = ((mb * 1e6) as u64) / args.scale;
            let rows = run_suite(&Contender::paper_five(), big_m, n, k, trials, |trial| {
                let spec = SyntheticSpec {
                    test_set: n as usize,
                    queries: args.scaled(1_000_000) as usize,
                    churn_per_period: args.scaled(20_000) as usize,
                    seed: 0x5943 + (trial as u64) * 0x1_0001 + u64::from(k),
                    ..SyntheticSpec::default()
                };
                let w = SyntheticWorkload::generate(&spec);
                Workload {
                    inserts: w.test_set,
                    churn: w.churn,
                    queries: w.queries,
                }
            });
            let cell = |name: &str| {
                rows.iter()
                    .find(|r| r.name == name)
                    .map(|r| sci(r.fpr))
                    .unwrap_or_else(|| "-".to_string())
            };
            t.row(vec![
                format!("{mb:.1}"),
                cell("CBF"),
                cell("PCBF-1"),
                cell("PCBF-2"),
                cell("MPCBF-1"),
                cell("MPCBF-2"),
            ]);
        }
        t.finish(
            &args.out_dir,
            &format!("fig07_fpr_synthetic_k{k}"),
            args.quiet,
        );
    }
}
