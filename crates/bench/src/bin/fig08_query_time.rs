//! Figure 8: execution time of 1M queries with k = 3, versus memory.
//!
//! The paper's findings to reproduce in software (no hardware hashing):
//! execution time is nearly flat in memory; PCBF-1/MPCBF-1 (one hash
//! computation + one word) run faster than CBF, while the g = 2 variants
//! pay for their extra word-selector hash. Absolute milliseconds are
//! machine-specific; the ordering and flatness are the result.

use mpcbf_bench::report::fixed;
use mpcbf_bench::runner::Workload;
use mpcbf_bench::{run_suite, Args, Contender, Table};
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};

fn main() {
    let args = Args::parse();
    let trials = args.trials_or(3);
    let n = args.scaled(100_000);
    let queries = args.scaled(1_000_000);
    let k = 3u32;

    let mut t = Table::new(
        &format!("Fig. 8 — execution time of {queries} queries (k = {k}, {trials} trials, ms)"),
        &[
            "memory (Mb)",
            "CBF",
            "PCBF-1",
            "PCBF-2",
            "MPCBF-1",
            "MPCBF-2",
        ],
    );
    for mb in [4.0f64, 5.0, 6.0, 7.0, 8.0] {
        let big_m = ((mb * 1e6) as u64) / args.scale;
        let rows = run_suite(&Contender::paper_five(), big_m, n, k, trials, |trial| {
            let spec = SyntheticSpec {
                test_set: n as usize,
                queries: queries as usize,
                churn_per_period: args.scaled(20_000) as usize,
                seed: 0xF18 + trial as u64 * 7,
                ..SyntheticSpec::default()
            };
            let w = SyntheticWorkload::generate(&spec);
            Workload {
                inserts: w.test_set,
                churn: w.churn,
                queries: w.queries,
            }
        });
        let cell = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .map(|r| fixed(r.query_ms, 1))
                .unwrap_or_else(|| "-".to_string())
        };
        t.row(vec![
            format!("{mb:.1}"),
            cell("CBF"),
            cell("PCBF-1"),
            cell("PCBF-2"),
            cell("MPCBF-1"),
            cell("MPCBF-2"),
        ]);
    }
    t.finish(&args.out_dir, "fig08_query_time", args.quiet);
}
