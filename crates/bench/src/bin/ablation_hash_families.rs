//! Ablation 4: hash-family sensitivity.
//!
//! MPCBF's analysis assumes uniform hashing; this ablation swaps the
//! digest function (Murmur3 x64-128, xxHash64-derived, FNV-1a-derived)
//! under identical configurations and shows the FPR is insensitive while
//! query time tracks digest cost — supporting the paper's §IV.B remark
//! that hashing, not the filter, dominates software latency.

use mpcbf_bench::report::{fixed, sci};
use mpcbf_bench::runner::{measure_workload, Workload};
use mpcbf_bench::{Args, Table};
use mpcbf_core::{Mpcbf, MpcbfConfig};
use mpcbf_hash::{Fnv, Murmur3, SipHash, XxHash};
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let big_m = 4_000_000u64 / args.scale;

    let spec = SyntheticSpec {
        test_set: n as usize,
        queries: args.scaled(1_000_000) as usize,
        churn_per_period: args.scaled(20_000) as usize,
        seed: 0xAB4,
        ..SyntheticSpec::default()
    };
    let sw = SyntheticWorkload::generate(&spec);
    let workload = Workload {
        inserts: sw.test_set,
        churn: sw.churn,
        queries: sw.queries,
    };

    let cfg = MpcbfConfig::builder()
        .memory_bits(big_m)
        .expected_items(n)
        .hashes(3)
        .seed(3)
        .build()
        .expect("shape");

    let mut t = Table::new(
        &format!(
            "Ablation — hash families, MPCBF-1 (M = {} Mb, n = {n}, k = 3)",
            big_m as f64 / 1e6
        ),
        &["hash family", "FPR", "query ms", "refused inserts"],
    );

    {
        let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        let m = measure_workload("Murmur3 x64-128", &mut f, &workload);
        t.row(vec![
            m.name.clone(),
            sci(m.fpr),
            fixed(m.query_wall.as_secs_f64() * 1e3, 1),
            m.skipped_inserts.to_string(),
        ]);
    }
    {
        let mut f: Mpcbf<u64, XxHash> = Mpcbf::new(cfg);
        let m = measure_workload("xxHash64 x2", &mut f, &workload);
        t.row(vec![
            m.name.clone(),
            sci(m.fpr),
            fixed(m.query_wall.as_secs_f64() * 1e3, 1),
            m.skipped_inserts.to_string(),
        ]);
    }
    {
        let mut f: Mpcbf<u64, Fnv> = Mpcbf::new(cfg);
        let m = measure_workload("FNV-1a + splitmix", &mut f, &workload);
        t.row(vec![
            m.name.clone(),
            sci(m.fpr),
            fixed(m.query_wall.as_secs_f64() * 1e3, 1),
            m.skipped_inserts.to_string(),
        ]);
    }
    {
        let mut f: Mpcbf<u64, SipHash> = Mpcbf::new(cfg);
        let m = measure_workload("SipHash-2-4 (keyed)", &mut f, &workload);
        t.row(vec![
            m.name.clone(),
            sci(m.fpr),
            fixed(m.query_wall.as_secs_f64() * 1e3, 1),
            m.skipped_inserts.to_string(),
        ]);
    }

    t.finish(&args.out_dir, "ablation_hash_families", args.quiet);
}
