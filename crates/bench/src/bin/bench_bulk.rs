//! Bulk-build benchmark: naive per-key insert vs the cache-bucketed
//! streaming builder vs the parallel region finish.
//!
//! ```text
//! cargo run --release -p mpcbf-bench --bin bench_bulk
//! cargo run --release -p mpcbf-bench --bin bench_bulk -- --scale 100
//! cargo run --release -p mpcbf-bench --bin bench_bulk -- --scale 100 --gate
//! ```
//!
//! Builds MPCBF-1 at 16 bits/key over a ladder of key counts up to 10^8
//! (DRAM-resident at the top) from the shared [`BulkKeys`] stream, and
//! emits `BENCH_bulk.json` with per-contender wall time, keys/s, speedup
//! over the naive scalar loop, and the peak-RSS delta attributed to each
//! build (the high-water mark is reset before each contender). Every
//! contender's filter is checked identical to the naive build before the
//! row is trusted.
//!
//! `--gate` re-measures only the buffered contender at the ladder's base
//! rung (n = 10^6) and compares its speedup against the same-n row in
//! the committed `BENCH_bulk.json` — the full-scale rungs are too slow
//! for CI, and cache-resident speedups are far below the DRAM-resident
//! headline, so the gate compares like with like (and still applies a
//! generous tolerance: staging costs are noisy near cache capacity).

use mpcbf_bench::{rss, Args};
use mpcbf_core::{BulkBuilder, Filter, Mpcbf, MpcbfConfig};
use mpcbf_hash::Murmur3;
use mpcbf_workloads::BulkKeys;
use std::fmt::Write as _;
use std::time::Instant;

/// Keys buffered per generator chunk (a few hundred KB resident).
const CHUNK: usize = 8_192;

/// Hash seed for filters and the key stream.
const SEED: u64 = 0x1b9d;

/// Gate floor: measured speedup must stay above `recorded * tolerance`.
/// Generous because the gate rung sits near cache capacity, where
/// staging overhead and machine noise swing the ratio hardest.
const GATE_TOLERANCE: f64 = 0.5;

/// The ladder rung the gate compares (present at every `--scale`).
const GATE_N: u64 = 1_000_000;

struct Row {
    n: u64,
    contender: &'static str,
    secs: f64,
    keys_per_sec: f64,
    speedup_vs_naive: f64,
    peak_rss_mib: Option<f64>,
}

fn config(n: u64) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(16 * n)
        .expected_items(n)
        .hashes(3)
        .seed(SEED)
        .build()
        .expect("bulk bench shape")
}

/// Times one build, attributing peak RSS to it.
fn timed(build: impl FnOnce() -> Mpcbf<u64, Murmur3>) -> (Mpcbf<u64, Murmur3>, f64, Option<f64>) {
    rss::reset_peak_rss();
    let start = Instant::now();
    let filter = build();
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let peak = rss::peak_rss_bytes().map(rss::bytes_to_mib);
    (filter, secs, peak)
}

fn naive_build(n: u64) -> Mpcbf<u64, Murmur3> {
    let mut filter = Mpcbf::new(config(n));
    BulkKeys::new(SEED, n).for_each_chunk(CHUNK, |chunk| {
        for key in chunk {
            let _ = filter.insert_bytes(key);
        }
    });
    filter
}

fn buffered_builder(n: u64) -> BulkBuilder<Murmur3> {
    let mut builder = BulkBuilder::new(config(n));
    BulkKeys::new(SEED, n).for_each_chunk(CHUNK, |chunk| {
        builder.push_chunk(chunk);
    });
    builder
}

/// One ladder rung: runs all three contenders, checks them identical,
/// returns their rows.
fn rung(n: u64, threads: usize, quiet: bool) -> Vec<Row> {
    let (naive, naive_secs, naive_peak) = timed(|| naive_build(n));
    let (buffered, buffered_secs, buffered_peak) = timed(|| buffered_builder(n).finish());
    let (parallel, parallel_secs, parallel_peak) =
        timed(|| mpcbf_concurrent::build_parallel(buffered_builder(n), threads));
    assert_eq!(
        naive.raw_words(),
        buffered.raw_words(),
        "buffered build diverged from naive at n={n}"
    );
    assert_eq!(
        naive.raw_words(),
        parallel.raw_words(),
        "parallel build diverged from naive at n={n}"
    );
    assert_eq!(naive.items(), buffered.items());
    assert_eq!(naive.overflows(), buffered.overflows());
    let mut rows = Vec::new();
    for (contender, secs, peak) in [
        ("naive", naive_secs, naive_peak),
        ("buffered", buffered_secs, buffered_peak),
        ("parallel", parallel_secs, parallel_peak),
    ] {
        let row = Row {
            n,
            contender,
            secs,
            keys_per_sec: n as f64 / secs,
            speedup_vs_naive: naive_secs / secs,
            peak_rss_mib: peak,
        };
        if !quiet {
            println!(
                "n {:>11}  {:<8}  {:>8.3}s  {:>12.0} keys/s  {:>6.2}x{}",
                row.n,
                row.contender,
                row.secs,
                row.keys_per_sec,
                row.speedup_vs_naive,
                row.peak_rss_mib
                    .map(|m| format!("  peak {m:.0} MiB"))
                    .unwrap_or_default(),
            );
        }
        rows.push(row);
    }
    rows
}

/// Pulls the recorded buffered speedup at the gate rung out of a
/// previously written `BENCH_bulk.json` (hand-rolled like the writer).
fn baseline_buffered_speedup(json: &str, n: u64) -> Option<f64> {
    let needle_n = format!("\"n\": {n},");
    let line = json
        .lines()
        .find(|l| l.contains(&needle_n) && l.contains("\"contender\": \"buffered\""))?;
    let value = line.split("\"speedup_vs_naive\": ").nth(1)?;
    value
        .split(|c: char| c != '.' && !c.is_ascii_digit())
        .next()?
        .parse()
        .ok()
}

fn main() {
    let args = Args::parse();
    let threads = mpcbf_concurrent::default_threads();

    if args.gate {
        let recorded = std::fs::read_to_string("BENCH_bulk.json")
            .ok()
            .as_deref()
            .and_then(|j| baseline_buffered_speedup(j, GATE_N))
            .unwrap_or_else(|| {
                eprintln!("gate: no buffered n={GATE_N} baseline in BENCH_bulk.json");
                std::process::exit(2);
            });
        let rows = rung(GATE_N, threads, args.quiet);
        let measured = rows
            .iter()
            .find(|r| r.contender == "buffered")
            .map(|r| r.speedup_vs_naive)
            .expect("buffered row");
        let floor = recorded * GATE_TOLERANCE;
        println!(
            "gate: buffered n={GATE_N} speedup measured {measured:.3}x, \
             recorded baseline {recorded:.3}x (floor {floor:.3}x)"
        );
        if measured < floor {
            eprintln!("gate: FAIL — bulk-build speedup regressed below the recorded baseline");
            std::process::exit(1);
        }
        println!("gate: OK");
        return;
    }

    // The top rung is the title claim — a billion keys, where the
    // filter (2 GB) dwarfs every cache level and naive insertion is
    // one TLB-missing DRAM round trip per key. CI runs --scale 100, so
    // it climbs only to 10^7 there.
    let ladder: Vec<u64> = [1_000_000u64, 10_000_000, 100_000_000, 1_000_000_000]
        .iter()
        .map(|&n| (n / args.scale).max(100_000))
        .collect();
    let mut rows = Vec::new();
    for &n in &ladder {
        if rows.iter().any(|r: &Row| r.n == n) {
            continue; // scale collapsed two rungs onto the same n
        }
        rows.extend(rung(n, threads, args.quiet));
    }

    let mut json = String::from("{\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"contender\": \"{}\", \"secs\": {:.4}, \
             \"keys_per_sec\": {:.0}, \"speedup_vs_naive\": {:.3}, \"peak_rss_mib\": {}}}{}",
            r.n,
            r.contender,
            r.secs,
            r.keys_per_sec,
            r.speedup_vs_naive,
            r.peak_rss_mib
                .map(|m| format!("{m:.1}"))
                .unwrap_or_else(|| "null".to_string()),
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"threads\": {threads}, \"bits_per_key\": 16, \"hashes\": 3, \
         \"chunk\": {CHUNK}, \"seed\": {SEED}\n}}\n"
    );
    std::fs::write("BENCH_bulk.json", &json).expect("write BENCH_bulk.json");
    println!("wrote BENCH_bulk.json");
}
