//! Table II: update overhead (memory accesses + access bandwidth) with
//! k = 3 and k = 4 on the synthetic workload's churn periods.
//!
//! Updates never short-circuit, so the expected rows are exact:
//! PCBF-1/MPCBF-1 = 1.0 access, PCBF-2/MPCBF-2 = 2.0, CBF ≈ k (minus
//! occasional counter-word sharing); MPCBF's update bandwidth exceeds its
//! query bandwidth by the hierarchy-traversal bits (§III.B.2).

use mpcbf_bench::report::fixed;
use mpcbf_bench::runner::Workload;
use mpcbf_bench::{run_suite, Args, Contender, Table};
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};

fn main() {
    let args = Args::parse();
    let trials = args.trials_or(3);
    let n = args.scaled(100_000);
    let big_m = 8_000_000u64 / args.scale;

    let mut t = Table::new(
        &format!(
            "Table II — update overhead (M = {} Mb, n = {n})",
            big_m as f64 / 1e6
        ),
        &[
            "structure",
            "accesses (k=3)",
            "bandwidth bits (k=3)",
            "accesses (k=4)",
            "bandwidth bits (k=4)",
        ],
    );

    let mut per_k = Vec::new();
    for k in [3u32, 4] {
        let rows = run_suite(&Contender::paper_five(), big_m, n, k, trials, |trial| {
            let spec = SyntheticSpec {
                test_set: n as usize,
                queries: args.scaled(100_000) as usize, // queries matter little here
                churn_per_period: args.scaled(20_000) as usize,
                periods: 2,
                seed: 0x7A2 + trial as u64 * 3 + u64::from(k) * 101,
                ..SyntheticSpec::default()
            };
            let w = SyntheticWorkload::generate(&spec);
            Workload {
                inserts: w.test_set,
                churn: w.churn,
                queries: w.queries,
            }
        });
        per_k.push(rows);
    }

    for c in Contender::paper_five() {
        let name = c.name();
        let find = |rows: &[mpcbf_bench::AvgRow]| rows.iter().find(|r| r.name == name).cloned();
        let (r3, r4) = (find(&per_k[0]), find(&per_k[1]));
        t.row(vec![
            name.clone(),
            r3.as_ref()
                .map(|r| fixed(r.update_accesses, 1))
                .unwrap_or("-".into()),
            r3.as_ref()
                .map(|r| fixed(r.update_bits, 0))
                .unwrap_or("-".into()),
            r4.as_ref()
                .map(|r| fixed(r.update_accesses, 1))
                .unwrap_or("-".into()),
            r4.as_ref()
                .map(|r| fixed(r.update_bits, 0))
                .unwrap_or("-".into()),
        ]);
    }
    t.finish(&args.out_dir, "table2_update_overhead", args.quiet);
}
