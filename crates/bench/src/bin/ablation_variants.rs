//! Ablation 3: MPCBF against the related-work variants the paper cites
//! (§II.B) — d-left CBF \[17\] and Variable-Increment CBF \[23\] — at equal
//! memory, plus the standard CBF anchor.
//!
//! The point to land: dlCBF and VI-CBF buy accuracy with memory layout
//! but still spend `d` / `k` memory accesses per query; MPCBF-1 is the
//! only one at a single access.

use mpcbf_bench::report::{fixed, sci};
use mpcbf_bench::runner::{measure_workload, Workload};
use mpcbf_bench::{Args, Table};
use mpcbf_core::{Cbf, Mpcbf, MpcbfConfig};
use mpcbf_hash::Murmur3;
use mpcbf_variants::{DlCbf, Rcbf, ViCbf};
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let big_m = 4_000_000u64 / args.scale;
    let k = 3u32;

    let spec = SyntheticSpec {
        test_set: n as usize,
        queries: args.scaled(1_000_000) as usize,
        churn_per_period: args.scaled(20_000) as usize,
        seed: 0xAB3,
        ..SyntheticSpec::default()
    };
    let sw = SyntheticWorkload::generate(&spec);
    let workload = Workload {
        inserts: sw.test_set,
        churn: sw.churn,
        queries: sw.queries,
    };

    let mut t = Table::new(
        &format!(
            "Ablation — related-work variants at equal memory (M = {} Mb, n = {n})",
            big_m as f64 / 1e6
        ),
        &[
            "structure",
            "memory bits",
            "FPR",
            "query accesses",
            "query ms",
        ],
    );
    let mut push = |m: mpcbf_bench::FilterMeasurement| {
        t.row(vec![
            m.name.clone(),
            m.memory_bits.to_string(),
            sci(m.fpr),
            fixed(m.stats.queries.mean_accesses(), 1),
            fixed(m.query_wall.as_secs_f64() * 1e3, 1),
        ]);
    };

    let mut cbf = Cbf::<Murmur3>::with_memory(big_m, k, 5);
    push(measure_workload("CBF (k=3)", &mut cbf, &workload));

    let mut dl = DlCbf::<Murmur3>::with_memory(big_m, 12, 5);
    push(measure_workload("dlCBF (d=4, r=12)", &mut dl, &workload));

    let mut vi = ViCbf::<Murmur3>::with_memory(big_m, k, 4, 5);
    push(measure_workload("VI-CBF (k=3, L=4)", &mut vi, &workload));

    let mut rc = Rcbf::<Murmur3>::with_memory(big_m, n, 5);
    push(measure_workload("RCBF (rank-indexed)", &mut rc, &workload));

    for g in [1u32, 2] {
        let cfg = MpcbfConfig::builder()
            .memory_bits(big_m)
            .expected_items(n)
            .hashes(k)
            .accesses(g)
            .seed(5)
            .build()
            .expect("mpcbf shape");
        let mut f: Mpcbf<u64> = Mpcbf::new(cfg);
        push(measure_workload(
            &format!("MPCBF-{g} (k=3)"),
            &mut f,
            &workload,
        ));
    }

    t.finish(&args.out_dir, "ablation_variants", args.quiet);
}
