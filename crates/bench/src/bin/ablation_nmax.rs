//! Ablation 2: the FPR / word-overflow trade-off of §III.B.4.
//!
//! Sweeping `n_max` around the Eq.-(11) heuristic at fixed memory:
//! smaller `n_max` ⇒ larger first level ⇒ lower FPR, but a larger chance
//! that some word's hierarchy fills. Reports the analytic expected
//! overflowing words, the measured refused inserts, and the measured FPR.

use mpcbf_analysis::heuristic::n_max_heuristic;
use mpcbf_analysis::overflow;
use mpcbf_bench::report::sci;
use mpcbf_bench::runner::{measure_workload, Workload};
use mpcbf_bench::{Args, Table};
use mpcbf_core::{Mpcbf, MpcbfConfig};
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let big_m = 4_000_000u64 / args.scale;
    let (k, w) = (3u32, 64u32);
    let l = big_m / u64::from(w);
    let pick = n_max_heuristic(n, l, 1);

    let spec = SyntheticSpec {
        test_set: n as usize,
        queries: args.scaled(1_000_000) as usize,
        churn_per_period: args.scaled(20_000) as usize,
        seed: 0xAB2,
        ..SyntheticSpec::default()
    };
    let sw = SyntheticWorkload::generate(&spec);
    let workload = Workload {
        inserts: sw.test_set,
        churn: sw.churn,
        queries: sw.queries,
    };

    let mut t = Table::new(
        &format!(
            "Ablation — n_max sweep (M = {} Mb, k = {k}, l = {l}; Eq. 11 picks {pick})",
            big_m as f64 / 1e6
        ),
        &[
            "n_max",
            "b1",
            "E[overflowing words]",
            "refused inserts",
            "measured FPR",
            "Eq.(11)",
        ],
    );

    let lo = pick.saturating_sub(4).max(2) as u32;
    let hi = (pick + 6) as u32;
    for n_max in lo..=hi {
        let Ok(cfg) = MpcbfConfig::builder()
            .memory_bits(big_m)
            .expected_items(n)
            .hashes(k)
            .n_max(n_max)
            .seed(11)
            .build()
        else {
            continue;
        };
        let mut f: Mpcbf<u64> = Mpcbf::new(cfg);
        let m = measure_workload("mpcbf", &mut f, &workload);
        let expected_overflow = l as f64 * overflow::overflow_exact(n, l, n_max + 1);
        t.row(vec![
            n_max.to_string(),
            cfg.shape().b1.to_string(),
            sci(expected_overflow),
            m.skipped_inserts.to_string(),
            sci(m.fpr),
            if u64::from(n_max) == pick { "<-" } else { "" }.to_string(),
        ]);
    }
    t.finish(&args.out_dir, "ablation_nmax", args.quiet);
}
