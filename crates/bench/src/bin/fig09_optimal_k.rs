//! Figure 9: optimal numbers of hash functions to minimise the false
//! positive rate, versus memory.
//!
//! CBF's optimum follows `(m/n)·ln 2` and climbs from ~6 to ~12 over
//! 4–8 Mb; MPCBF's optimum — found by brute-force search over Eq. (8) —
//! stays nearly constant (≈3 for MPCBF-1, 4–5 for MPCBF-2, ≈5 for
//! MPCBF-3), because raising k also shrinks the first level.

use mpcbf_analysis::{optimal_k_cbf, optimal_k_mpcbf};
use mpcbf_bench::{Args, Table};

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let w = 64u32;

    let mut t = Table::new(
        &format!("Fig. 9 — optimal k vs memory (n = {n}, w = {w})"),
        &["memory (Mb)", "CBF", "MPCBF-1", "MPCBF-2", "MPCBF-3"],
    );
    for mb in [4.0f64, 4.5, 5.0, 5.5, 6.0, 6.5, 7.0, 7.5, 8.0] {
        let big_m = (mb * 1e6) as u64;
        let fmt = |g: u32| {
            optimal_k_mpcbf(big_m, w, n, g, 16)
                .map(|o| o.k.to_string())
                .unwrap_or_else(|| "-".to_string())
        };
        t.row(vec![
            format!("{mb:.1}"),
            optimal_k_cbf(big_m, 4, n).to_string(),
            fmt(1),
            fmt(2),
            fmt(3),
        ]);
    }
    t.finish(&args.out_dir, "fig09_optimal_k", args.quiet);
}
