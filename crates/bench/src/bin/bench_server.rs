//! Filter-server soak: concurrent clients, a kill −9 drill, and the
//! ack⟹durable contract checked end to end over a real process.
//!
//! ```text
//! cargo build --release -p mpcbf-cli          # provides the `mpcbf` bin
//! cargo run --release -p mpcbf-bench --bin bench_server
//! cargo run --release -p mpcbf-bench --bin bench_server -- --scale 10
//! ```
//!
//! Emits `BENCH_server.json` (consumed by the CI server job) with two
//! sections:
//!
//! * `throughput` — four client threads drive the paper's workload mix
//!   (batched inserts, 80 %-member queries, churn removals) against a
//!   live `mpcbf serve` child per fsync policy; the server is stopped
//!   gracefully, restarted, and every acknowledged surviving key must
//!   still answer present (a clean stop loses nothing even under
//!   relaxed fsync);
//! * `kill_drill` — under `Always` fsync the child is SIGKILLed
//!   mid-stream; after `open_or_recover` (driven by a fresh `serve`),
//!   zero false negatives on acknowledged keys and a clean scrub.
//!
//! The child binary is located next to this executable (or via
//! `MPCBF_SERVER_BIN`); per-client key streams are pinned to
//! `DRILL_SEEDS` so runs are reproducible.

use mpcbf_bench::Args;
use mpcbf_server::Client;
use mpcbf_workloads::DRILL_SEEDS;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const BATCH: usize = 100;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mpcbf-bench-server-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn server_bin() -> PathBuf {
    if let Ok(path) = std::env::var("MPCBF_SERVER_BIN") {
        return path.into();
    }
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let candidate = dir.join("mpcbf");
    if candidate.exists() {
        return candidate;
    }
    panic!(
        "`mpcbf` binary not found in {} — build it with `cargo build --release -p mpcbf-cli` \
         or point MPCBF_SERVER_BIN at it",
        dir.display()
    );
}

/// Spawns `mpcbf serve` on an OS-assigned port and parses the
/// `listening on ADDR` line from its stdout.
fn spawn_server(dir: &Path, fsync: &str, items: u64) -> (Child, SocketAddr) {
    let mut child = Command::new(server_bin())
        .args([
            "serve",
            "--dir",
            dir.to_str().expect("utf-8 scratch path"),
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "4",
            "--fsync",
            fsync,
            "--items",
            &items.to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn mpcbf serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut reader = BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read server stdout");
        assert!(n > 0, "server exited before printing its address");
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.parse::<SocketAddr>().expect("server address");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = reader.read_to_end(&mut sink);
    });
    (child, addr)
}

/// Deterministic per-client key stream, disjoint across clients and
/// pinned to the shared drill seeds.
fn client_key(client: usize, i: u64) -> Vec<u8> {
    format!(
        "c{client}-s{:x}-k{i}",
        DRILL_SEEDS[client % DRILL_SEEDS.len()]
    )
    .into_bytes()
}

fn non_member_key(client: usize, i: u64) -> Vec<u8> {
    format!("ghost-{client}-{i}").into_bytes()
}

struct ClientOutcome {
    /// Keys acknowledged as inserted and never removed.
    surviving: Vec<Vec<u8>>,
    /// Mutations (inserts + removals) acknowledged.
    acked_ops: u64,
    /// Member queries that failed to hit while the server was live.
    live_false_negatives: u64,
}

/// One client's slice of the workload mix: batched inserts, queries at
/// the paper's 80 % member ratio, then churn removals of a quarter of
/// the inserted set.
fn drive_mix(addr: SocketAddr, client_id: usize, keys_per_client: u64) -> ClientOutcome {
    let mut client = Client::connect(addr).expect("connect");
    let keys: Vec<Vec<u8>> = (0..keys_per_client)
        .map(|i| client_key(client_id, i))
        .collect();
    let mut acked_ops = 0u64;
    let mut live_false_negatives = 0u64;

    for chunk in keys.chunks(BATCH) {
        let outcomes = client.insert_batch(chunk).expect("insert batch");
        acked_ops += outcomes.iter().filter(|o| o.is_applied()).count() as u64;

        // Table II mix: ~80% of queries hit members, the rest miss.
        let members = (BATCH * 4) / 5;
        let mut queries: Vec<Vec<u8>> = chunk.iter().take(members).cloned().collect();
        queries.extend((0..(BATCH - members)).map(|i| non_member_key(client_id, i as u64)));
        let hits = client.query_batch(&queries).expect("query batch");
        live_false_negatives += hits[..chunk.len().min(members)]
            .iter()
            .filter(|&&h| !h)
            .count() as u64;
    }

    // Churn: remove the first quarter, which must all still be present.
    let removed = keys.len() / 4;
    for chunk in keys[..removed].chunks(BATCH) {
        let outcomes = client.remove_batch(chunk).expect("remove batch");
        let applied = outcomes.iter().filter(|o| o.is_applied()).count();
        assert_eq!(applied, chunk.len(), "removing inserted keys must apply");
        acked_ops += applied as u64;
    }

    ClientOutcome {
        surviving: keys[removed..].to_vec(),
        acked_ops,
        live_false_negatives,
    }
}

/// Queries `keys` against a fresh server and counts false negatives.
fn count_false_negatives(addr: SocketAddr, keys: &[Vec<u8>]) -> u64 {
    let mut client = Client::connect(addr).expect("connect for verification");
    let mut misses = 0u64;
    for chunk in keys.chunks(256) {
        let hits = client.query_batch(chunk).expect("verification query");
        misses += hits.iter().filter(|&&h| !h).count() as u64;
    }
    misses
}

fn stats_scrub_clean(addr: SocketAddr) -> bool {
    let mut client = Client::connect(addr).expect("connect for stats");
    client
        .stats_json()
        .expect("stats")
        .contains("\"scrub_clean\":true")
}

struct ThroughputRow {
    policy: String,
    acked_ops: u64,
    ops_per_sec: f64,
    false_negatives: u64,
    scrub_clean: bool,
}

/// Drive the mix from [`CLIENTS`] threads, stop gracefully, restart,
/// and verify every acknowledged surviving key.
fn soak_policy(fsync: &str, keys_per_client: u64) -> ThroughputRow {
    let dir = scratch_dir(&format!("soak-{fsync}"));
    let items = (CLIENTS as u64 * keys_per_client * 2).max(10_000);
    let (mut child, addr) = spawn_server(&dir, fsync, items);

    let start = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| std::thread::spawn(move || drive_mix(addr, c, keys_per_client)))
        .collect();
    let outcomes: Vec<ClientOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed = start.elapsed().as_secs_f64();

    for o in &outcomes {
        assert_eq!(o.live_false_negatives, 0, "live member query missed");
    }
    let acked_ops: u64 = outcomes.iter().map(|o| o.acked_ops).sum();

    Client::connect(addr)
        .expect("connect for shutdown")
        .shutdown_server()
        .expect("graceful shutdown");
    let status = child.wait().expect("server exit");
    assert!(status.success(), "server exited uncleanly: {status}");

    // A clean stop must lose nothing, whatever the fsync policy.
    let (mut child, addr) = spawn_server(&dir, fsync, items);
    let false_negatives: u64 = outcomes
        .iter()
        .map(|o| count_false_negatives(addr, &o.surviving))
        .sum();
    let scrub_clean = stats_scrub_clean(addr);
    Client::connect(addr)
        .expect("connect for shutdown")
        .shutdown_server()
        .expect("second shutdown");
    child.wait().expect("second exit");
    let _ = std::fs::remove_dir_all(&dir);

    ThroughputRow {
        policy: fsync.to_string(),
        acked_ops,
        ops_per_sec: acked_ops as f64 / elapsed.max(1e-9),
        false_negatives,
        scrub_clean,
    }
}

struct KillDrillRow {
    acked_before_kill: u64,
    false_negatives: u64,
    scrub_clean: bool,
}

/// SIGKILL the server mid-stream under `Always` fsync; every key acked
/// before the kill must survive recovery.
fn kill_drill(max_keys_per_client: u64) -> KillDrillRow {
    let dir = scratch_dir("kill");
    let items = (CLIENTS as u64 * max_keys_per_client * 2).max(10_000);
    let (mut child, addr) = spawn_server(&dir, "always", items);

    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => return Vec::new(),
                };
                let mut acked: Vec<Vec<u8>> = Vec::new();
                // Offset past the soak's key range is unnecessary (fresh
                // dir); scalar inserts maximise ack granularity so the
                // kill lands between acks, not between batches.
                for i in 0..max_keys_per_client {
                    let key = client_key(c, i);
                    match client.insert(&key) {
                        Ok(outcome) if outcome.is_applied() => acked.push(key),
                        Ok(_) => {}
                        // The kill: connection drops mid-stream.
                        Err(_) => break,
                    }
                }
                acked
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(400));
    child.kill().expect("SIGKILL server");
    let _ = child.wait();

    let acked: Vec<Vec<Vec<u8>>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let acked_before_kill: u64 = acked.iter().map(|a| a.len() as u64).sum();
    assert!(
        acked_before_kill > 0,
        "the drill needs acknowledged keys before the kill"
    );

    // Recovery: a fresh serve on the same directory replays the WALs.
    let (mut child, addr) = spawn_server(&dir, "always", items);
    let false_negatives: u64 = acked
        .iter()
        .map(|keys| count_false_negatives(addr, keys))
        .sum();
    let scrub_clean = stats_scrub_clean(addr);
    Client::connect(addr)
        .expect("connect for shutdown")
        .shutdown_server()
        .expect("post-drill shutdown");
    child.wait().expect("post-drill exit");
    let _ = std::fs::remove_dir_all(&dir);

    KillDrillRow {
        acked_before_kill,
        false_negatives,
        scrub_clean,
    }
}

fn to_json(rows: &[ThroughputRow], drill: &KillDrillRow) -> String {
    let mut json = String::with_capacity(2 * 1024);
    json.push_str("{\n  \"clients\": 4,\n  \"throughput\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"policy\": \"{}\", \"acked_ops\": {}, \"ops_per_sec\": {:.1}, \
             \"false_negatives_after_restart\": {}, \"scrub_clean\": {}}}",
            r.policy, r.acked_ops, r.ops_per_sec, r.false_negatives, r.scrub_clean
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    let _ = write!(
        json,
        "  ],\n  \"kill_drill\": {{\"policy\": \"always\", \"acked_before_kill\": {}, \
         \"false_negatives\": {}, \"scrub_clean\": {}}}\n}}\n",
        drill.acked_before_kill, drill.false_negatives, drill.scrub_clean
    );
    json
}

fn main() {
    let args = Args::parse();
    let keys_per_client = args.scaled(2_000);

    println!(
        "server soak: {CLIENTS} clients × {keys_per_client} keys, mix per policy, then kill −9"
    );
    let rows: Vec<ThroughputRow> = ["always", "every-64", "interval-2ms"]
        .iter()
        .map(|fsync| {
            let row = soak_policy(fsync, keys_per_client);
            println!(
                "  {:<14} {:>10.0} acked ops/s  restart FNs {}  scrub {}",
                row.policy,
                row.ops_per_sec,
                row.false_negatives,
                if row.scrub_clean { "clean" } else { "DIRTY" }
            );
            assert_eq!(row.false_negatives, 0, "graceful stop lost acked keys");
            assert!(row.scrub_clean, "restart must scrub clean");
            row
        })
        .collect();

    let drill = kill_drill(args.scaled(2_000_000));
    println!(
        "  kill -9 drill: {} keys acked before kill, {} false negatives, scrub {}",
        drill.acked_before_kill,
        drill.false_negatives,
        if drill.scrub_clean { "clean" } else { "DIRTY" }
    );
    assert_eq!(
        drill.false_negatives, 0,
        "an acknowledged key vanished across the kill"
    );
    assert!(drill.scrub_clean, "recovered image must scrub clean");

    let json = to_json(&rows, &drill);
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    println!("wrote BENCH_server.json");
}
