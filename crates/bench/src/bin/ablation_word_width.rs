//! Ablation 5: word width beyond the paper's sweep.
//!
//! The paper evaluates w = 16…64 (one CPU word per access); its analysis
//! (Fig. 5) predicts further FPR gains from wider words. This ablation
//! runs MPCBF-1 with 32-, 64-, 128-, 256- and 512-bit words at equal
//! memory — the latter two modelling a DDR burst / full cache line as the
//! "one memory access" unit.

use mpcbf_bench::report::{fixed, sci};
use mpcbf_bench::runner::{measure_workload, Workload};
use mpcbf_bench::{Args, Table};
use mpcbf_bitvec::{W256, W512};
use mpcbf_core::{Mpcbf, MpcbfConfig};
use mpcbf_hash::Murmur3;
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let big_m = 4_000_000u64 / args.scale;

    let spec = SyntheticSpec {
        test_set: n as usize,
        queries: args.scaled(1_000_000) as usize,
        churn_per_period: args.scaled(20_000) as usize,
        seed: 0xAB5,
        ..SyntheticSpec::default()
    };
    let sw = SyntheticWorkload::generate(&spec);
    let workload = Workload {
        inserts: sw.test_set,
        churn: sw.churn,
        queries: sw.queries,
    };

    let mut t = Table::new(
        &format!(
            "Ablation — word width, MPCBF-1 (M = {} Mb, n = {n}, k = 3)",
            big_m as f64 / 1e6
        ),
        &["word bits", "b1", "FPR", "query ms", "refused inserts"],
    );

    macro_rules! run_width {
        ($w:expr, $ty:ty) => {{
            match MpcbfConfig::builder()
                .memory_bits(big_m)
                .expected_items(n)
                .hashes(3)
                .word_bits($w)
                .seed(9)
                .build()
            {
                Ok(cfg) => {
                    let mut f: Mpcbf<$ty, Murmur3> = Mpcbf::new(cfg);
                    let m = measure_workload("mpcbf", &mut f, &workload);
                    t.row(vec![
                        $w.to_string(),
                        cfg.shape().b1.to_string(),
                        sci(m.fpr),
                        fixed(m.query_wall.as_secs_f64() * 1e3, 1),
                        m.skipped_inserts.to_string(),
                    ]);
                }
                Err(e) => {
                    eprintln!("note: w = {} infeasible: {e}", $w);
                }
            }
        }};
    }

    run_width!(32u32, u32);
    run_width!(64u32, u64);
    run_width!(128u32, u128);
    run_width!(256u32, W256);
    run_width!(512u32, W512);

    t.finish(&args.out_dir, "ablation_word_width", args.quiet);
}
