//! Portable-vs-dispatched kernel microbenchmarks, emitted as
//! `BENCH_kernels.json`.
//!
//! Three levels of the stack are measured in one process:
//!
//! 1. **u64 primitives** — `rank` / `rank_range` / `insert_zero` /
//!    `remove_bit` through the runtime-dispatched kernel against their
//!    portable baselines (BZHI/PDEP/PEXT vs. mask-and-shift);
//! 2. **HCBF word walks** — the hot (carried-rank, kernel-dispatched)
//!    update and query paths against the `*_reference` walks, on `u64` and
//!    on the 512-bit wide word;
//! 3. **MPCBF-1 batch query** — end-to-end queries/sec, scalar vs. the
//!    fused batch-64 pipeline (reusable plan buffer, interleaved word
//!    walks), to track the speedup against the PR 1 baseline (1.51x in
//!    `BENCH_batch.json`).
//!
//! The JSON also records the per-operation kernel routing the batch
//! pipeline resolved ([`Kernel::batch`]): query walks always take the
//! branchless portable kernel, update walks take the accelerated kernel
//! when the CPU offers one. Run from the repo root.

use mpcbf_bench::report::fixed;
use mpcbf_bench::Args;
use mpcbf_bitvec::{kernel, Kernel, Word, W512};
use mpcbf_core::hcbf::HcbfWord;
use mpcbf_core::{Filter, Mpcbf, MpcbfConfig, PlanBuffer};
use mpcbf_hash::Murmur3;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Runs `pass` (one full pass returning its op count) repeatedly for at
/// least `budget`, returning ops/sec.
fn ops_per_sec(budget: Duration, mut pass: impl FnMut() -> u64) -> f64 {
    let _ = pass(); // warm-up
    let start = Instant::now();
    let mut ops = 0u64;
    while start.elapsed() < budget {
        ops += pass();
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

/// Deterministic xorshift stream for benchmark inputs.
fn xorshift_stream(mut state: u64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        })
        .collect()
}

struct Pair {
    name: &'static str,
    portable: f64,
    dispatched: f64,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.dispatched / self.portable
    }
}

/// u64 primitive throughput: one pass evaluates every (bits, pos) input.
fn bench_primitives(budget: Duration) -> Vec<Pair> {
    let bits = xorshift_stream(0x9e37_79b9_7f4a_7c15, 4096);
    let pos: Vec<u32> = xorshift_stream(0x2545_f491_4f6c_dd1d, 4096)
        .iter()
        .map(|v| (v % 64) as u32)
        .collect();
    let n = bits.len() as u64;

    let mut out = Vec::new();
    macro_rules! prim {
        ($name:literal, $portable:expr, $dispatched:expr) => {{
            let p = ops_per_sec(budget, || {
                let mut acc = 0u64;
                for (&b, &i) in bits.iter().zip(&pos) {
                    acc ^= u64::from($portable(b, i));
                }
                black_box(acc);
                n
            });
            let d = ops_per_sec(budget, || {
                let mut acc = 0u64;
                for (&b, &i) in bits.iter().zip(&pos) {
                    acc ^= u64::from($dispatched(b, i));
                }
                black_box(acc);
                n
            });
            out.push(Pair {
                name: $name,
                portable: p,
                dispatched: d,
            });
        }};
    }
    prim!("rank", kernel::rank_u64_portable, kernel::rank_u64);
    prim!(
        "rank_range",
        |b, i| kernel::rank_range_u64_portable(b, i / 2, i),
        |b, i| kernel::rank_range_u64(b, i / 2, i)
    );
    prim!(
        "insert_zero",
        kernel::insert_zero_u64_portable,
        kernel::insert_zero_u64
    );
    prim!(
        "remove_bit",
        kernel::remove_bit_u64_portable,
        kernel::remove_bit_u64
    );
    out
}

/// HCBF word-walk throughput: update = increment+decrement round trip over
/// `positions` (net-zero state), query = `query_all` over probe triples.
fn bench_word_walks<W: Word>(label: &'static str, b1: u32, budget: Duration) -> (Pair, Pair) {
    let positions: Vec<u32> = xorshift_stream(0x0123_4567_89ab_cdef, (b1 as usize) / 2)
        .iter()
        .map(|v| (v % u64::from(b1)) as u32)
        .collect();
    let n = positions.len() as u64;

    let mut word: HcbfWord<W> = HcbfWord::new();
    let update_hot = ops_per_sec(budget, || {
        for &p in &positions {
            word.increment(p, b1).expect("capacity");
        }
        for &p in &positions {
            word.decrement(p, b1).expect("present");
        }
        black_box(&word);
        2 * n
    });
    let update_ref = ops_per_sec(budget, || {
        for &p in &positions {
            word.increment_reference(p, b1).expect("capacity");
        }
        for &p in &positions {
            word.decrement_reference(p, b1).expect("present");
        }
        black_box(&word);
        2 * n
    });

    // Query against a word holding half the positions: mixed hits/misses.
    let mut loaded: HcbfWord<W> = HcbfWord::new();
    for &p in &positions {
        loaded.increment(p, b1).expect("capacity");
    }
    let probes: Vec<[u32; 3]> = (0..1024u64)
        .map(|i| {
            let s = xorshift_stream(i + 1, 3);
            [
                (s[0] % u64::from(b1)) as u32,
                (s[1] % u64::from(b1)) as u32,
                (s[2] % u64::from(b1)) as u32,
            ]
        })
        .collect();
    let qn = probes.len() as u64;
    let query_hot = ops_per_sec(budget, || {
        let mut acc = 0u64;
        for p in &probes {
            acc += u64::from(loaded.query_all(p).0);
        }
        black_box(acc);
        qn
    });
    let query_ref = ops_per_sec(budget, || {
        let mut acc = 0u64;
        for p in &probes {
            acc += u64::from(loaded.query_all_reference(p).0);
        }
        black_box(acc);
        qn
    });

    let _ = label;
    (
        Pair {
            name: "update",
            portable: update_ref,
            dispatched: update_hot,
        },
        Pair {
            name: "query",
            portable: query_ref,
            dispatched: query_hot,
        },
    )
}

/// End-to-end MPCBF-1 queries/sec, scalar loop vs batch-64 pipeline, at
/// the Table II configuration.
fn bench_mpcbf1_batch(args: &Args, budget: Duration) -> (f64, f64) {
    let big_m = 8_000_000u64 / args.scale;
    let n = args.scaled(100_000);
    let mut filter = Mpcbf::<u64, Murmur3>::new(
        MpcbfConfig::builder()
            .memory_bits(big_m)
            .expected_items(n)
            .hashes(3)
            .seed(1)
            .build()
            .unwrap(),
    );
    for i in 0..n {
        filter.insert_bytes(&i.to_le_bytes()).expect("pre-load");
    }
    // 80/20 member/stranger mix, as in BENCH_batch.json.
    let queries: Vec<[u8; 8]> = (0..args.scaled(40_000))
        .map(|i| {
            if i % 5 == 4 {
                (10_000_000 + i).to_le_bytes()
            } else {
                (i % n).to_le_bytes()
            }
        })
        .collect();
    let views: Vec<&[u8]> = queries.iter().map(|k| k.as_slice()).collect();
    let scalar = ops_per_sec(budget, || {
        let mut hits = 0u64;
        for k in &views {
            hits += u64::from(filter.contains_bytes(k));
        }
        black_box(hits);
        views.len() as u64
    });
    let mut plans = PlanBuffer::new();
    let batch64 = ops_per_sec(budget, || {
        for chunk in views.chunks(64) {
            black_box(filter.contains_batch_with(chunk, &mut plans));
        }
        views.len() as u64
    });
    (scalar, batch64)
}

fn main() {
    let args = Args::parse();
    let budget = Duration::from_millis(if args.scale > 1 { 60 } else { 200 });

    let primitives = bench_primitives(budget);
    let (u64_update, u64_query) = bench_word_walks::<u64>("u64", 40, budget);
    let (w512_update, w512_query) = bench_word_walks::<W512>("w512", 330, budget);
    let (scalar, batch64) = bench_mpcbf1_batch(&args, budget);

    let routing = Kernel::batch();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"kernel\": {{\"active\": \"{}\", \"cpu_features\": \"{}\", \
         \"forced\": {}}},",
        Kernel::active().name(),
        Kernel::cpu_features(),
        match std::env::var("MPCBF_KERNEL") {
            Ok(v) => format!("\"{v}\""),
            Err(_) => "null".to_string(),
        }
    );
    let _ = writeln!(
        json,
        "  \"batch_routing\": {{\"query_kernel\": \"{}\", \"update_kernel\": \"{}\"}},",
        routing.query.kernel().name(),
        routing.update.kernel().name(),
    );
    json.push_str("  \"primitives_u64\": [\n");
    for (i, p) in primitives.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"portable_mops\": {}, \"dispatched_mops\": {}, \
             \"speedup\": {}}}{}",
            p.name,
            fixed(p.portable / 1e6, 1),
            fixed(p.dispatched / 1e6, 1),
            fixed(p.speedup(), 3),
            if i + 1 < primitives.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"word_walks\": [\n");
    let walks = [
        ("u64", &u64_update),
        ("u64", &u64_query),
        ("w512", &w512_update),
        ("w512", &w512_query),
    ];
    for (i, (word, p)) in walks.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"word\": \"{}\", \"op\": \"{}\", \"portable_ops_per_sec\": {:.0}, \
             \"dispatched_ops_per_sec\": {:.0}, \"speedup\": {}}}{}",
            word,
            p.name,
            p.portable,
            p.dispatched,
            fixed(p.speedup(), 3),
            if i + 1 < walks.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"mpcbf1_batch_query\": {{\"scalar_ops_per_sec\": {scalar:.0}, \
         \"batch64_ops_per_sec\": {batch64:.0}, \"speedup_vs_scalar\": {}, \
         \"pr1_baseline_speedup\": 1.51}}",
        fixed(batch64 / scalar, 3)
    );
    json.push_str("}\n");

    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    if !args.quiet {
        println!("{json}");
        println!("wrote BENCH_kernels.json");
    }
}
