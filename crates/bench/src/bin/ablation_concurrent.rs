//! Ablation 6: thread scaling of the concurrent MPCBF variants.
//!
//! The paper motivates MPCBF with line-rate parallel packet processing;
//! its per-word state makes per-word synchronisation natural. This
//! ablation measures mixed insert/query/remove throughput of
//! a globally-locked sequential filter, the sharded-mutex variant, and
//! the lock-free CAS variant, from 1 to 8 threads.

use mpcbf_bench::report::fixed;
use mpcbf_bench::{Args, Table};
use mpcbf_concurrent::{AtomicMpcbf, ShardedMpcbf};
use mpcbf_core::{CountingFilter, Filter, Mpcbf, MpcbfConfig};
use mpcbf_hash::Murmur3;
use std::sync::Mutex;
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let n = args.scaled(100_000);
    let ops_per_thread = args.scaled(200_000);
    let big_m = 8_000_000u64 / args.scale;

    let cfg = MpcbfConfig::builder()
        .memory_bits(big_m)
        .expected_items(n)
        .hashes(3)
        .seed(66)
        .build()
        .expect("shape");

    let mut t = Table::new(
        &format!(
            "Ablation — concurrent throughput, Mops/s ({} ops/thread, 50% query / 25% insert / 25% remove)",
            ops_per_thread
        ),
        &["threads", "Mutex<Mpcbf>", "ShardedMpcbf", "AtomicMpcbf"],
    );

    for threads in [1usize, 2, 4, 8] {
        let total_ops = ops_per_thread * threads as u64;

        // Global mutex baseline.
        let locked = Mutex::new(Mpcbf::<u64, Murmur3>::new(cfg));
        let mutex_mops = {
            let start = Instant::now();
            crossbeam::scope(|s| {
                for tid in 0..threads {
                    let locked = &locked;
                    s.spawn(move |_| {
                        run_mix(tid as u64, ops_per_thread, |op, key| {
                            let mut f = locked.lock().unwrap();
                            match op {
                                0 => {
                                    let _ = f.insert(&key);
                                }
                                1 => {
                                    let _ = f.remove(&key);
                                }
                                _ => {
                                    let _ = std::hint::black_box(f.contains(&key));
                                }
                            }
                        });
                    });
                }
            })
            .unwrap();
            total_ops as f64 / start.elapsed().as_secs_f64() / 1e6
        };

        // Sharded.
        let sharded: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, 256);
        let sharded_mops = {
            let start = Instant::now();
            crossbeam::scope(|s| {
                for tid in 0..threads {
                    let f = &sharded;
                    s.spawn(move |_| {
                        run_mix(tid as u64, ops_per_thread, |op, key| match op {
                            0 => {
                                let _ = f.insert(&key);
                            }
                            1 => {
                                let _ = f.remove(&key);
                            }
                            _ => {
                                let _ = std::hint::black_box(f.contains(&key));
                            }
                        });
                    });
                }
            })
            .unwrap();
            total_ops as f64 / start.elapsed().as_secs_f64() / 1e6
        };

        // Lock-free.
        let atomic: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(cfg);
        let atomic_mops = {
            let start = Instant::now();
            crossbeam::scope(|s| {
                for tid in 0..threads {
                    let f = &atomic;
                    s.spawn(move |_| {
                        run_mix(tid as u64, ops_per_thread, |op, key| match op {
                            0 => {
                                let _ = f.insert(&key);
                            }
                            1 => {
                                let _ = f.remove(&key);
                            }
                            _ => {
                                let _ = std::hint::black_box(f.contains(&key));
                            }
                        });
                    });
                }
            })
            .unwrap();
            total_ops as f64 / start.elapsed().as_secs_f64() / 1e6
        };

        t.row(vec![
            threads.to_string(),
            fixed(mutex_mops, 2),
            fixed(sharded_mops, 2),
            fixed(atomic_mops, 2),
        ]);
    }
    t.finish(&args.out_dir, "ablation_concurrent", args.quiet);
}

/// Deterministic per-thread op mix: op 0 inserts a fresh key, op 1
/// removes it again (keys are thread-disjoint, so removes always target
/// a present key), op 2.. queries random keys.
fn run_mix(tid: u64, ops: u64, mut apply: impl FnMut(u8, u64)) {
    let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(tid + 1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let base = (tid + 1) << 40;
    let mut live = 0u64;
    for i in 0..ops {
        match next() % 4 {
            0 => {
                apply(0, base + live);
                live += 1;
            }
            1 if live > 0 => {
                live -= 1;
                apply(1, base + live);
            }
            _ => apply(2, next() % (base / 2)),
        }
        let _ = i;
    }
}
