//! Table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table that can also be dumped as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned human-readable form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
                first = false;
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders the CSV form (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Prints the table (unless quiet) and writes `<out_dir>/<name>.csv`.
    pub fn finish(&self, out_dir: &str, name: &str, quiet: bool) {
        if !quiet {
            println!("{}", self.render());
        }
        if let Err(e) = write_csv(out_dir, name, &self.to_csv()) {
            eprintln!("warning: could not write CSV for {name}: {e}");
        }
    }
}

/// Writes `contents` to `<dir>/<name>.csv`, creating the directory.
pub fn write_csv(dir: &str, name: &str, contents: &str) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let path = Path::new(dir).join(format!("{name}.csv"));
    let mut f = fs::File::create(path)?;
    f.write_all(contents.as_bytes())
}

/// Formats a probability in compact scientific notation.
pub fn sci(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else {
        format!("{p:.3e}")
    }
}

/// Formats a float with `d` decimals.
pub fn fixed(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("long-name"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("mpcbf-report-test");
        let dir = dir.to_str().unwrap();
        write_csv(dir, "t", "a,b\n1,2\n").unwrap();
        let read = std::fs::read_to_string(Path::new(dir).join("t.csv")).unwrap();
        assert_eq!(read, "a,b\n1,2\n");
    }

    #[test]
    fn sci_and_fixed() {
        assert_eq!(sci(0.0), "0");
        assert!(sci(0.00123).starts_with("1.230e-3"));
        assert_eq!(fixed(1.23456, 2), "1.23");
    }
}
