//! Drives filters through the paper's experimental protocol.
//!
//! Protocol (§IV.A): insert the test set, apply the update periods
//! (deletes + fresh inserts, constant population), then run the query
//! stream. The runner tracks ground-truth membership dynamically, so
//! false positives are counted against the *live* set (churn-deleted keys
//! that still report present are correctly counted as false positives).
//!
//! Two query passes are made: a metered pass collecting the
//! memory-access / bandwidth statistics (Tables I–III), and an unmetered
//! timed pass for the execution-time figures (Fig. 8), so metering
//! overhead never pollutes timings.

use mpcbf_core::metrics::AccessStats;
use mpcbf_core::{CountingFilter, Filter};
use mpcbf_hash::Key;
use mpcbf_workloads::churn::ChurnPlan;
use std::collections::HashSet;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// A complete workload: initial inserts, churn, and the query stream.
#[derive(Debug, Clone)]
pub struct Workload<K> {
    /// Keys inserted before anything else.
    pub inserts: Vec<K>,
    /// Update periods applied after the initial inserts.
    pub churn: ChurnPlan<K>,
    /// The query stream.
    pub queries: Vec<K>,
}

impl<K> Workload<K> {
    /// A workload with no churn.
    pub fn without_churn(inserts: Vec<K>, queries: Vec<K>) -> Self {
        Workload {
            inserts,
            churn: ChurnPlan::empty(),
            queries,
        }
    }
}

/// Everything measured for one filter on one workload.
#[derive(Debug, Clone)]
pub struct FilterMeasurement {
    /// Display name of the filter configuration.
    pub name: String,
    /// Measured false-positive rate (FPs / non-member queries).
    pub fpr: f64,
    /// Raw false-positive count.
    pub false_positives: u64,
    /// Non-member queries issued (the FPR denominator).
    pub negatives: u64,
    /// Metered access statistics, split by operation kind.
    pub stats: AccessStats,
    /// Wall time of the initial insert phase (unmetered pass not taken;
    /// inserts are metered inline).
    pub insert_wall: Duration,
    /// Wall time of the churn phase.
    pub churn_wall: Duration,
    /// Wall time of the *unmetered* query pass (Fig. 8's metric).
    pub query_wall: Duration,
    /// Inserts refused (word overflow) — expected ≈ 0 at the paper's
    /// heuristic; reported for transparency.
    pub skipped_inserts: u64,
    /// Deletes refused (NotPresent) during churn; should be 0 unless the
    /// filter previously refused the insert of that key.
    pub skipped_deletes: u64,
    /// The filter's memory footprint in bits.
    pub memory_bits: u64,
}

impl FilterMeasurement {
    /// Queries per second of the unmetered pass.
    pub fn queries_per_sec(&self, query_count: u64) -> f64 {
        if self.query_wall.is_zero() {
            f64::INFINITY
        } else {
            query_count as f64 / self.query_wall.as_secs_f64()
        }
    }
}

/// Runs `filter` through `workload` and measures everything.
pub fn measure_workload<F, K>(
    name: &str,
    filter: &mut F,
    workload: &Workload<K>,
) -> FilterMeasurement
where
    F: CountingFilter,
    K: Key + Eq + Hash + Clone,
{
    let mut stats = AccessStats::new();
    let mut live: HashSet<K> = HashSet::with_capacity(workload.inserts.len() * 2);
    let mut skipped_inserts = 0u64;
    let mut skipped_deletes = 0u64;

    // Phase 1: initial inserts (metered).
    let t0 = Instant::now();
    for key in &workload.inserts {
        match filter.insert_bytes_cost(key.key_bytes().as_slice()) {
            Ok(cost) => {
                stats.inserts.record(cost);
                live.insert(key.clone());
            }
            Err(_) => skipped_inserts += 1,
        }
    }
    let insert_wall = t0.elapsed();

    // Phase 2: churn periods (metered).
    let t1 = Instant::now();
    for period in &workload.churn.periods {
        for key in &period.deletes {
            match filter.remove_bytes_cost(key.key_bytes().as_slice()) {
                Ok(cost) => {
                    stats.removes.record(cost);
                    live.remove(key);
                }
                Err(_) => skipped_deletes += 1,
            }
        }
        for key in &period.inserts {
            match filter.insert_bytes_cost(key.key_bytes().as_slice()) {
                Ok(cost) => {
                    stats.inserts.record(cost);
                    live.insert(key.clone());
                }
                Err(_) => skipped_inserts += 1,
            }
        }
    }
    let churn_wall = t1.elapsed();

    // Phase 3a: metered query pass (FPR + access stats).
    let mut false_positives = 0u64;
    let mut negatives = 0u64;
    for key in &workload.queries {
        let (hit, cost) = filter.contains_bytes_cost(key.key_bytes().as_slice());
        stats.queries.record(cost);
        if !live.contains(key) {
            negatives += 1;
            if hit {
                false_positives += 1;
            }
        }
    }

    // Phase 3b: unmetered timed query pass (Fig. 8).
    let t2 = Instant::now();
    let mut acc = 0u64;
    for key in &workload.queries {
        acc += u64::from(filter.contains_bytes(key.key_bytes().as_slice()));
    }
    let query_wall = t2.elapsed();
    std::hint::black_box(acc);

    FilterMeasurement {
        name: name.to_string(),
        fpr: if negatives == 0 {
            0.0
        } else {
            false_positives as f64 / negatives as f64
        },
        false_positives,
        negatives,
        stats,
        insert_wall,
        churn_wall,
        query_wall,
        skipped_inserts,
        skipped_deletes,
        memory_bits: filter.memory_bits(),
    }
}

/// Like [`measure_workload`] but for insert-only filters (Bloom, BF-1);
/// churn deletes are skipped (counted) since the filter cannot delete.
pub fn measure_workload_insert_only<F, K>(
    name: &str,
    filter: &mut F,
    workload: &Workload<K>,
) -> FilterMeasurement
where
    F: Filter,
    K: Key + Eq + Hash + Clone,
{
    let mut stats = AccessStats::new();
    let mut live: HashSet<K> = HashSet::with_capacity(workload.inserts.len() * 2);
    let t0 = Instant::now();
    for key in &workload.inserts {
        if filter.insert_bytes_cost(key.key_bytes().as_slice()).is_ok() {
            live.insert(key.clone());
        }
    }
    let insert_wall = t0.elapsed();

    let mut false_positives = 0u64;
    let mut negatives = 0u64;
    for key in &workload.queries {
        let (hit, cost) = filter.contains_bytes_cost(key.key_bytes().as_slice());
        stats.queries.record(cost);
        if !live.contains(key) {
            negatives += 1;
            if hit {
                false_positives += 1;
            }
        }
    }
    let t2 = Instant::now();
    let mut acc = 0u64;
    for key in &workload.queries {
        acc += u64::from(filter.contains_bytes(key.key_bytes().as_slice()));
    }
    let query_wall = t2.elapsed();
    std::hint::black_box(acc);

    FilterMeasurement {
        name: name.to_string(),
        fpr: if negatives == 0 {
            0.0
        } else {
            false_positives as f64 / negatives as f64
        },
        false_positives,
        negatives,
        stats,
        insert_wall,
        churn_wall: Duration::ZERO,
        query_wall,
        skipped_inserts: 0,
        skipped_deletes: workload.churn.total_deletes() as u64,
        memory_bits: filter.memory_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpcbf_core::Cbf;
    use mpcbf_hash::Murmur3;
    use mpcbf_workloads::churn::ChurnPeriod;

    fn keys(range: std::ops::Range<u64>) -> Vec<u64> {
        range.collect()
    }

    #[test]
    fn fpr_counts_only_non_members() {
        let mut f = Cbf::<Murmur3>::new(100_000, 3, 1);
        let w = Workload::without_churn(keys(0..1000), keys(0..2000));
        let m = measure_workload("cbf", &mut f, &w);
        assert_eq!(m.negatives, 1000);
        assert!(m.fpr < 0.05);
        assert_eq!(m.stats.queries.ops(), 2000);
        assert_eq!(m.stats.inserts.ops(), 1000);
    }

    #[test]
    fn churn_updates_ground_truth() {
        let mut f = Cbf::<Murmur3>::new(100_000, 3, 2);
        let w = Workload {
            inserts: keys(0..100),
            churn: ChurnPlan {
                periods: vec![ChurnPeriod {
                    deletes: keys(0..50),
                    inserts: keys(1000..1050),
                }],
            },
            queries: keys(0..50), // all deleted ⇒ all negatives now
        };
        let m = measure_workload("cbf", &mut f, &w);
        assert_eq!(m.negatives, 50);
        assert_eq!(m.skipped_deletes, 0);
        assert_eq!(m.stats.removes.ops(), 50);
        assert_eq!(m.stats.inserts.ops(), 150);
    }

    #[test]
    fn insert_only_runner_works() {
        use mpcbf_core::BloomFilter;
        let mut f = BloomFilter::<Murmur3>::new(100_000, 3, 3);
        let w = Workload::without_churn(keys(0..500), keys(0..1000));
        let m = measure_workload_insert_only("bloom", &mut f, &w);
        assert_eq!(m.negatives, 500);
        assert!(m.fpr < 0.05);
    }

    #[test]
    fn queries_per_sec_is_finite_for_real_runs() {
        let mut f = Cbf::<Murmur3>::new(10_000, 3, 4);
        let w = Workload::without_churn(keys(0..100), keys(0..100_000));
        let m = measure_workload("cbf", &mut f, &w);
        let qps = m.queries_per_sec(100_000);
        assert!(qps.is_finite() && qps > 0.0);
    }
}
