//! Telemetry validation harness: replays the paper's §IV.A synthetic
//! workload through the metered batch pipeline and checks the measured
//! mean memory accesses against Table II/III.
//!
//! Each contender (CBF, MPCBF-1, MPCBF-2) at the Table II configuration
//! (M = 8 Mb, n = 100 K, k = 3, 80% member queries) gets a fresh
//! [`Telemetry`] registry as its [`OpSink`]; after the replay the
//! registry's per-kind ledgers yield the mean accesses per query and per
//! update, which the paper reports as its headline speed metric. The
//! harness emits `BENCH_telemetry.json` (hand-rolled JSON, like the other
//! `BENCH_*` emitters) and one Prometheus text page per contender.
//!
//! Reference points (paper Table II/III, k = 3): queries cost ≈ 2.6
//! accesses on CBF (short-circuit on the first empty counter), exactly
//! 1 on MPCBF-1 and ≈ 1.8 on MPCBF-2; updates cost k = 3 on CBF and
//! exactly g on MPCBF-g. The CBF query expectation is recomputed
//! analytically from the actual load (`r·k + (1−r)·Σ_{i<k} pⁱ` with
//! `p = 1 − e^{−kn/m}`), so `--scale` runs stay comparable.

use crate::args::Args;
use mpcbf_core::{Cbf, Mpcbf, MpcbfConfig};
use mpcbf_hash::Murmur3;
use mpcbf_telemetry::{json_snapshot, prometheus_text, Telemetry, TelemetrySnapshot};
use mpcbf_workloads::driver::{replay_synthetic_metered, DEFAULT_BATCH};
use mpcbf_workloads::synthetic::{SyntheticSpec, SyntheticWorkload};
use std::fmt::Write as _;

/// Relative tolerance for measured-vs-expected mean accesses.
pub const TOLERANCE: f64 = 0.15;

/// One contender's measured and expected access means.
#[derive(Debug, Clone)]
pub struct VariantRow {
    /// Contender name (`CBF`, `MPCBF-1`, `MPCBF-2`).
    pub name: &'static str,
    /// Measured mean memory accesses per query.
    pub measured_query: f64,
    /// Expected mean accesses per query (paper Table II, analytic form
    /// where available).
    pub expected_query: f64,
    /// Measured mean memory accesses per update (inserts + removes).
    pub measured_update: f64,
    /// Expected mean accesses per update.
    pub expected_update: f64,
    /// The contender's full telemetry snapshot.
    pub snapshot: TelemetrySnapshot,
}

impl VariantRow {
    /// Relative deviation of the measured query mean from the expectation.
    pub fn query_deviation(&self) -> f64 {
        (self.measured_query - self.expected_query).abs() / self.expected_query
    }

    /// Relative deviation of the measured update mean.
    pub fn update_deviation(&self) -> f64 {
        (self.measured_update - self.expected_update).abs() / self.expected_update
    }

    /// Whether both means sit within [`TOLERANCE`] of their expectations.
    pub fn within_tolerance(&self) -> bool {
        self.query_deviation() <= TOLERANCE && self.update_deviation() <= TOLERANCE
    }
}

/// The harness result: one row per contender plus the shared config.
#[derive(Debug, Clone)]
pub struct TelemetryValidation {
    /// Memory budget in bits (scaled).
    pub memory_bits: u64,
    /// Test-set size (scaled).
    pub n: u64,
    /// Hash count.
    pub k: u32,
    /// Per-contender outcomes.
    pub rows: Vec<VariantRow>,
}

impl TelemetryValidation {
    /// Whether every contender validated within [`TOLERANCE`].
    pub fn pass(&self) -> bool {
        self.rows.iter().all(VariantRow::within_tolerance)
    }

    /// The `BENCH_telemetry.json` document.
    pub fn to_json(&self) -> String {
        let mut json = String::with_capacity(16 * 1024);
        json.push_str("{\n");
        let _ = writeln!(
            json,
            "  \"config\": {{\"memory_bits\": {}, \"n\": {}, \"k\": {}, \
             \"query_mix\": \"80% member\", \"tolerance\": {TOLERANCE}}},",
            self.memory_bits, self.n, self.k
        );
        let _ = writeln!(json, "  \"pass\": {},", self.pass());
        json.push_str("  \"results\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = writeln!(json, "    {{\"filter\": \"{}\",", row.name);
            let _ = writeln!(
                json,
                "     \"query\": {{\"measured_accesses\": {:.4}, \"expected_accesses\": {:.4}, \
                 \"deviation\": {:.4}}},",
                row.measured_query,
                row.expected_query,
                row.query_deviation()
            );
            let _ = writeln!(
                json,
                "     \"update\": {{\"measured_accesses\": {:.4}, \"expected_accesses\": {:.4}, \
                 \"deviation\": {:.4}}},",
                row.measured_update,
                row.expected_update,
                row.update_deviation()
            );
            let _ = writeln!(
                json,
                "     \"within_tolerance\": {},",
                row.within_tolerance()
            );
            // Embed the full snapshot document (already valid JSON).
            let snap = json_snapshot(&row.snapshot);
            let _ = write!(json, "     \"telemetry\": {}", snap.trim_end());
            let _ = writeln!(json, "}}{}", if i + 1 < self.rows.len() { "," } else { "" });
        }
        json.push_str("  ]\n}\n");
        json
    }

    /// One Prometheus text page per contender, separated by comment
    /// headers (each contender is its own registry, hence its own scrape).
    pub fn prometheus_pages(&self) -> String {
        let mut out = String::with_capacity(32 * 1024);
        for row in &self.rows {
            let _ = writeln!(out, "# scrape: {} (independent registry)", row.name);
            out.push_str(&prometheus_text(&row.snapshot));
        }
        out
    }
}

/// The analytic CBF expected mean accesses per query at load `kn/m`
/// with member ratio `r`: members probe all `k` counters, non-members
/// short-circuit at the first empty one.
pub fn expected_cbf_query_accesses(n: u64, m: u64, k: u32, r: f64) -> f64 {
    let p = 1.0 - (-((f64::from(k)) * n as f64 / m as f64)).exp();
    let miss: f64 = (0..k).map(|i| p.powi(i as i32)).sum();
    r * f64::from(k) + (1.0 - r) * miss
}

/// The expected MPCBF-g mean accesses per query: members probe all `g`
/// words; a non-member stops at the first word whose first-level check
/// fails, and a single word's pass probability is small at the paper's
/// load, so the paper reports ≈ `r·g + (1−r)·1` (Table II: 1.0 for g = 1,
/// ≈ 1.8 for g = 2 at r = 0.8).
pub fn expected_mpcbf_query_accesses(g: u32, r: f64) -> f64 {
    r * f64::from(g) + (1.0 - r)
}

/// Runs the validation at the Table II configuration divided by
/// `args.scale`, replaying through [`replay_synthetic_metered`].
pub fn run_validation(args: &Args) -> TelemetryValidation {
    let memory_bits = 8_000_000u64 / args.scale;
    let n = args.scaled(100_000);
    let k = 3u32;
    let spec = SyntheticSpec {
        test_set: n as usize,
        queries: args.scaled(1_000_000) as usize,
        churn_per_period: args.scaled(20_000) as usize,
        periods: 1,
        ..SyntheticSpec::default()
    };
    let workload = SyntheticWorkload::generate(&spec);
    let r = spec.member_ratio;

    let mpcbf_cfg = |g: u32| {
        MpcbfConfig::builder()
            .memory_bits(memory_bits)
            .expected_items(n)
            .hashes(k)
            .accesses(g)
            .seed(1)
            .build()
            .expect("Table II shape")
    };

    let mut rows = Vec::new();
    for g in [1u32, 2] {
        let sink = Telemetry::new();
        let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(mpcbf_cfg(g));
        replay_synthetic_metered(&mut f, &workload, DEFAULT_BATCH, &sink);
        sink.record_health(&f.health());
        let snapshot = sink.snapshot();
        rows.push(VariantRow {
            name: if g == 1 { "MPCBF-1" } else { "MPCBF-2" },
            measured_query: snapshot.query.mean_accesses(),
            expected_query: expected_mpcbf_query_accesses(g, r),
            measured_update: snapshot.updates().mean_accesses(),
            expected_update: f64::from(g),
            snapshot,
        });
    }

    let sink = Telemetry::new();
    let mut cbf = Cbf::<Murmur3>::with_memory(memory_bits, k, 1);
    replay_synthetic_metered(&mut cbf, &workload, DEFAULT_BATCH, &sink);
    let snapshot = sink.snapshot();
    rows.push(VariantRow {
        name: "CBF",
        measured_query: snapshot.query.mean_accesses(),
        expected_query: expected_cbf_query_accesses(n, memory_bits / 4, k, r),
        measured_update: snapshot.updates().mean_accesses(),
        expected_update: f64::from(k),
        snapshot,
    });

    TelemetryValidation {
        memory_bits,
        n,
        k,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_passes_at_ci_scale() {
        // The acceptance gate, CI-sized: every contender's measured mean
        // accesses must match Table II/III within the tolerance.
        let args = Args::from_iter(["--scale".to_string(), "20".to_string()]);
        let v = run_validation(&args);
        for row in &v.rows {
            assert!(
                row.within_tolerance(),
                "{}: query {:.3} vs {:.3}, update {:.3} vs {:.3}",
                row.name,
                row.measured_query,
                row.expected_query,
                row.measured_update,
                row.expected_update
            );
        }
        assert!(v.pass());
    }

    #[test]
    fn mpcbf1_queries_cost_exactly_one_access() {
        // The paper's defining claim: MPCBF-1 always reads exactly one
        // word per query, member or not.
        let args = Args::from_iter(["--scale".to_string(), "50".to_string()]);
        let v = run_validation(&args);
        let row = v.rows.iter().find(|r| r.name == "MPCBF-1").unwrap();
        assert!(
            (row.measured_query - 1.0).abs() < 1e-9,
            "MPCBF-1 measured {}",
            row.measured_query
        );
        // Updates are *almost* exactly 1: the rare refused insert (word
        // overflow under the scaled-down shape) records zero accesses, so
        // allow a hair of slack rather than exact equality.
        assert!(
            (row.measured_update - 1.0).abs() < 1e-2,
            "MPCBF-1 update mean {}",
            row.measured_update
        );
    }

    #[test]
    fn json_and_pages_are_emittable() {
        let args = Args::from_iter(["--scale".to_string(), "100".to_string()]);
        let v = run_validation(&args);
        let json = v.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"MPCBF-2\""));
        let pages = v.prometheus_pages();
        for line in pages.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("metric line");
            assert!(series.starts_with("mpcbf_"), "bad series {series}");
            assert!(value == "+Inf" || value.parse::<f64>().is_ok());
        }
        assert!(pages.contains("mpcbf_fill_ratio"));
    }
}
