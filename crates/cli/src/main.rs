//! `mpcbf` — command-line front end for the filter library.
//!
//! ```text
//! mpcbf build  --out f.mpcbf --items 100000 [--memory-bits 4000000]
//!              [--hashes 3] [--accesses 1] [--kind mpcbf|cbf] [--seed 7]
//!              [--input keys.txt]          # default: stdin, one key/line
//! mpcbf query  --filter f.mpcbf [--input keys.txt]   # key<TAB>true|false
//! mpcbf insert --filter f.mpcbf [--input keys.txt]   # updates in place
//! mpcbf remove --filter f.mpcbf [--input keys.txt]
//! mpcbf stats  --filter f.mpcbf
//! mpcbf size   --items 1000000 --fpr 0.001 [--hashes 3] [--accesses 1]
//! mpcbf recover --dir d/ [--items N] [--input keys.txt]  # durable home
//! ```

use std::io::{BufRead, Write};
use std::process::ExitCode;

mod commands;
mod opts;

use opts::{CliError, Opts};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", opts::USAGE);
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    if command == "--help" || command == "-h" || command == "help" {
        println!("{}", opts::USAGE);
        return Ok(());
    }
    let opts = Opts::parse(rest)?;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match command.as_str() {
        "build" => commands::build(&opts, &mut read_keys(&opts)?),
        "query" => commands::query(&opts, &mut read_keys(&opts)?, &mut out),
        "insert" => commands::update(&opts, &mut read_keys(&opts)?, true),
        "remove" => commands::update(&opts, &mut read_keys(&opts)?, false),
        "stats" => commands::stats(&opts, &mut out),
        "recover" => {
            // Keys are only streamed in when --input was given; plain
            // recovery must not block reading stdin.
            if opts.input.is_some() {
                commands::recover(&opts, Some(&mut read_keys(&opts)?), &mut out)
            } else {
                commands::recover(&opts, None, &mut out)
            }
        }
        "replay" => commands::replay(&opts, &mut out),
        "serve" => commands::serve(&opts, &mut out),
        "size" => commands::size(&opts, &mut out),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// Opens the key stream: `--input FILE` or stdin.
fn read_keys(opts: &Opts) -> Result<Box<dyn Iterator<Item = Result<String, CliError>>>, CliError> {
    let reader: Box<dyn BufRead> = match &opts.input {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path)
                .map_err(|e| CliError::Runtime(format!("cannot open {path}: {e}")))?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    Ok(Box::new(reader.lines().map(|l| {
        l.map_err(|e| CliError::Runtime(format!("read error: {e}")))
    })))
}

/// Flushes best-effort on exit paths that print a lot.
#[allow(dead_code)]
fn flush(out: &mut impl Write) {
    let _ = out.flush();
}
