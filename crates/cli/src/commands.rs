//! Command implementations for the `mpcbf` CLI.

use crate::opts::{CliError, Kind, Opts};
use mpcbf_analysis::tradeoff;
use mpcbf_core::{Cbf, CodecError, CountingFilter, Filter, Mpcbf, MpcbfConfig};
use mpcbf_hash::Murmur3;
use std::io::Write;

type Keys<'a> = dyn Iterator<Item = Result<String, CliError>> + 'a;

/// A filter loaded from (or destined for) a file.
enum AnyFilter {
    Mpcbf(Mpcbf<u64, Murmur3>),
    Cbf(Cbf<Murmur3>),
}

impl AnyFilter {
    fn contains(&self, key: &str) -> bool {
        match self {
            AnyFilter::Mpcbf(f) => f.contains(key),
            AnyFilter::Cbf(f) => f.contains(key),
        }
    }

    fn insert(&mut self, key: &str) -> Result<(), String> {
        match self {
            AnyFilter::Mpcbf(f) => f.insert(&key).map_err(|e| e.to_string()),
            AnyFilter::Cbf(f) => f.insert(&key).map_err(|e| e.to_string()),
        }
    }

    fn remove(&mut self, key: &str) -> Result<(), String> {
        match self {
            AnyFilter::Mpcbf(f) => f.remove(&key).map_err(|e| e.to_string()),
            AnyFilter::Cbf(f) => f.remove(&key).map_err(|e| e.to_string()),
        }
    }

    fn encode(&self) -> Vec<u8> {
        match self {
            AnyFilter::Mpcbf(f) => f.encode(),
            AnyFilter::Cbf(f) => f.encode(),
        }
    }

    fn decode(image: &[u8]) -> Result<Self, CliError> {
        // Keep the error of the decoder the image was *for*: a corrupt
        // MPCBF image fails the CBF fallback with `UnknownKind`, which
        // would mask the precise diagnosis (checksum mismatch, truncation).
        let first = match Mpcbf::<u64, Murmur3>::decode(image) {
            Ok(f) => return Ok(AnyFilter::Mpcbf(f)),
            Err(e) => e,
        };
        let e = match Cbf::<Murmur3>::decode(image) {
            Ok(f) => return Ok(AnyFilter::Cbf(f)),
            Err(CodecError::UnknownKind(_)) => first,
            Err(e) => e,
        };
        Err(CliError::Runtime(format!("cannot decode filter: {e}")))
    }

    fn load(path: &str) -> Result<Self, CliError> {
        let image = std::fs::read(path)
            .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
        Self::decode(&image)
    }

    fn store(&self, path: &str) -> Result<(), CliError> {
        std::fs::write(path, self.encode())
            .map_err(|e| CliError::Runtime(format!("cannot write {path}: {e}")))
    }
}

/// Streams the build's key source into `push`: `--synthetic N` walks the
/// deterministic [`mpcbf_workloads::BulkKeys`] stream in chunks (never
/// materialised), otherwise every non-empty line of `keys`.
fn feed_keys(
    opts: &Opts,
    keys: &mut Keys<'_>,
    push: &mut dyn FnMut(&[u8]),
) -> Result<u64, CliError> {
    let mut total = 0u64;
    if let Some(n) = opts.synthetic {
        mpcbf_workloads::BulkKeys::new(opts.seed, n).for_each_chunk(8_192, |chunk| {
            for key in chunk {
                push(key);
            }
        });
        total = n;
    } else {
        for key in keys {
            let key = key?;
            if key.is_empty() {
                continue;
            }
            push(key.as_bytes());
            total += 1;
        }
    }
    Ok(total)
}

/// `mpcbf build --bulk`: ingest through the cache-bucketed streaming
/// builder. With `--out`, writes a plain MPCBF image via the codec path;
/// with `--dir`, bulk-builds a sharded filter and materialises a durable
/// snapshot directory directly — no per-key WAL frames — that `serve`
/// and `recover` cold-start from with zero records replayed.
fn bulk_build(opts: &Opts, keys: &mut Keys<'_>) -> Result<(), CliError> {
    use mpcbf_concurrent::{build_parallel, ShardedBulkBuilder};
    use mpcbf_core::BulkBuilder;

    if opts.kind != Kind::Mpcbf {
        return Err(CliError::Usage("--bulk supports --kind mpcbf only".into()));
    }
    let items = match (opts.items, opts.synthetic) {
        (Some(n), _) => n,
        (None, Some(n)) => n,
        (None, None) => return Err(CliError::Usage("--items N (positive) is required".into())),
    };
    if items == 0 {
        return Err(CliError::Usage("--items N (positive) is required".into()));
    }
    let memory = opts.memory_or_default(items);
    let config = MpcbfConfig::builder()
        .memory_bits(memory)
        .expected_items(items)
        .hashes(opts.hashes)
        .accesses(opts.accesses)
        .seed(opts.seed)
        .build()
        .map_err(|e| CliError::Runtime(format!("infeasible configuration: {e}")))?;
    let threads = opts
        .threads
        .unwrap_or_else(mpcbf_concurrent::default_threads);

    if let Some(dir) = opts.dir.as_deref() {
        use mpcbf_durability::{DurabilityOptions, DurableShardedMpcbf};
        let mut builder: ShardedBulkBuilder<Murmur3> =
            ShardedBulkBuilder::new(config, opts.shards.unwrap_or(8));
        let total = feed_keys(opts, keys, &mut |key| builder.push(key))?;
        let filter = builder.finish_parallel(threads);
        let fsync = parse_fsync(opts.fsync.as_deref().unwrap_or("always"))?;
        DurableShardedMpcbf::<Murmur3>::bootstrap(
            &filter,
            DurabilityOptions::new(dir).fsync(fsync),
        )
        .map_err(|e| CliError::Runtime(format!("bootstrap failed: {e}")))?;
        eprintln!(
            "bulk-built {dir}: {total} keys into {} shards ({} refused), \
             snapshot written, no WAL replay needed",
            filter.shard_count(),
            filter.overflows(),
        );
        return Ok(());
    }

    let out = opts
        .out
        .as_deref()
        .ok_or_else(|| CliError::Usage("--out FILE (or --dir DIR) is required".into()))?;
    let mut builder: BulkBuilder<Murmur3> = BulkBuilder::new(config);
    let total = feed_keys(opts, keys, &mut |key| {
        builder.push(key);
    })?;
    let filter = build_parallel(builder, threads);
    let inserted = filter.items();
    let refused = filter.overflows();
    AnyFilter::Mpcbf(filter).store(out)?;
    eprintln!(
        "bulk-built {out}: {total} keys streamed, {inserted} inserted, \
         {refused} refused, {memory} bits"
    );
    Ok(())
}

/// `mpcbf build`: construct a filter from a key stream and write it out.
pub fn build(opts: &Opts, keys: &mut Keys<'_>) -> Result<(), CliError> {
    if opts.bulk {
        return bulk_build(opts, keys);
    }
    let out = opts
        .out
        .as_deref()
        .ok_or_else(|| CliError::Usage("--out FILE is required".into()))?;
    let items = opts.require_items()?;
    let memory = opts.memory_or_default(items);

    let mut filter = match opts.kind {
        Kind::Mpcbf => {
            let config = MpcbfConfig::builder()
                .memory_bits(memory)
                .expected_items(items)
                .hashes(opts.hashes)
                .accesses(opts.accesses)
                .seed(opts.seed)
                .build()
                .map_err(|e| CliError::Runtime(format!("infeasible configuration: {e}")))?;
            AnyFilter::Mpcbf(Mpcbf::new(config))
        }
        Kind::Cbf => AnyFilter::Cbf(
            Cbf::try_with_memory(memory, opts.hashes, opts.seed)
                .map_err(|e| CliError::Runtime(format!("infeasible configuration: {e}")))?,
        ),
    };

    let mut inserted = 0u64;
    let mut refused = 0u64;
    for key in keys {
        let key = key?;
        if key.is_empty() {
            continue;
        }
        match filter.insert(&key) {
            Ok(()) => inserted += 1,
            Err(_) => refused += 1,
        }
    }
    filter.store(out)?;
    eprintln!("built {out}: {inserted} keys inserted, {refused} refused, {memory} bits");
    Ok(())
}

/// `mpcbf query`: membership per key.
pub fn query(opts: &Opts, keys: &mut Keys<'_>, out: &mut impl Write) -> Result<(), CliError> {
    let filter = AnyFilter::load(opts.require_filter()?)?;
    for key in keys {
        let key = key?;
        if key.is_empty() {
            continue;
        }
        writeln!(out, "{key}\t{}", filter.contains(&key))
            .map_err(|e| CliError::Runtime(format!("write error: {e}")))?;
    }
    Ok(())
}

/// `mpcbf insert` / `mpcbf remove`: update the filter file in place.
pub fn update(opts: &Opts, keys: &mut Keys<'_>, inserting: bool) -> Result<(), CliError> {
    let path = opts.require_filter()?;
    let mut filter = AnyFilter::load(path)?;
    let mut applied = 0u64;
    let mut failed = 0u64;
    for key in keys {
        let key = key?;
        if key.is_empty() {
            continue;
        }
        let result = if inserting {
            filter.insert(&key)
        } else {
            filter.remove(&key)
        };
        match result {
            Ok(()) => applied += 1,
            Err(msg) => {
                failed += 1;
                eprintln!("{key}: {msg}");
            }
        }
    }
    filter.store(path)?;
    let verb = if inserting { "inserted" } else { "removed" };
    eprintln!("{verb} {applied} keys ({failed} failed)");
    Ok(())
}

/// `mpcbf stats`: structural and occupancy information.
pub fn stats(opts: &Opts, out: &mut impl Write) -> Result<(), CliError> {
    let filter = AnyFilter::load(opts.require_filter()?)?;
    let mut p = |line: String| {
        writeln!(out, "{line}").map_err(|e| CliError::Runtime(format!("write error: {e}")))
    };
    match &filter {
        AnyFilter::Mpcbf(f) => {
            let s = f.shape();
            p(format!("kind          MPCBF-{}", s.g))?;
            p(format!("words         {} x {} bits", s.l, s.w))?;
            p(format!("hashes (k)    {}", s.k))?;
            p(format!("n_max / b1    {} / {}", s.n_max, s.b1))?;
            p(format!("memory bits   {}", f.memory_bits()))?;
            p(format!("items         {}", f.items()))?;
            p(format!("overflows     {}", f.overflows()))?;
            let loads = f.word_loads();
            let max = loads.iter().max().copied().unwrap_or(0);
            let nonempty = loads.iter().filter(|&&c| c > 0).count();
            let total: u64 = loads.iter().map(|&c| u64::from(c)).sum();
            p(format!(
                "word loads    total {total}, max {max}/{}, {nonempty}/{} words occupied",
                s.w - s.b1,
                loads.len()
            ))?;
        }
        AnyFilter::Cbf(f) => {
            p("kind          CBF".to_string())?;
            p(format!("counters      {} x 4 bits", f.len_counters()))?;
            p(format!("hashes (k)    {}", f.num_hashes()))?;
            p(format!("memory bits   {}", f.memory_bits()))?;
            p(format!("items         {}", f.items()))?;
            p(format!("saturations   {}", f.saturations()))?;
        }
    }
    Ok(())
}

/// `mpcbf recover`: open-or-recover a durable MPCBF directory and print
/// the recovery report (snapshot used, records replayed, torn tails
/// repaired, scrub verdict). A fresh directory is initialised from the
/// shape flags. With `--input`, the keys are then inserted through the
/// write-ahead log and a snapshot is taken, so the directory is the
/// filter's durable home rather than a one-shot image file.
pub fn recover(
    opts: &Opts,
    keys: Option<&mut Keys<'_>>,
    out: &mut impl Write,
) -> Result<(), CliError> {
    use mpcbf_durability::{DurabilityOptions, DurableFilter};

    let dir = opts.require_dir()?;
    let items = opts.items.unwrap_or(100_000);
    let config = MpcbfConfig::builder()
        .memory_bits(opts.memory_or_default(items))
        .expected_items(items)
        .hashes(opts.hashes)
        .accesses(opts.accesses)
        .seed(opts.seed)
        .build()
        .map_err(|e| CliError::Runtime(format!("infeasible configuration: {e}")))?;
    let (mut filter, report) =
        DurableFilter::open_or_recover(DurabilityOptions::new(dir), || -> Mpcbf<u64, Murmur3> {
            Mpcbf::new(config)
        })
        .map_err(|e| CliError::Runtime(format!("recovery failed: {e}")))?;

    writeln!(out, "{report}").map_err(|e| CliError::Runtime(format!("write error: {e}")))?;
    writeln!(
        out,
        "items {}  overflows {}  seq {}",
        filter.inner().items(),
        filter.inner().overflows(),
        filter.seq()
    )
    .map_err(|e| CliError::Runtime(format!("write error: {e}")))?;

    if let Some(keys) = keys {
        let mut inserted = 0u64;
        let mut refused = 0u64;
        for key in keys {
            let key = key?;
            if key.is_empty() {
                continue;
            }
            match filter.insert_bytes(key.as_bytes()) {
                Ok(()) => inserted += 1,
                Err(mpcbf_durability::DurableError::Filter(_)) => refused += 1,
                Err(e) => return Err(CliError::Runtime(format!("durable insert failed: {e}"))),
            }
        }
        filter
            .snapshot()
            .map_err(|e| CliError::Runtime(format!("snapshot failed: {e}")))?;
        eprintln!("inserted {inserted} keys durably ({refused} refused), snapshot taken");
    }

    if !report.scrub_clean {
        return Err(CliError::Runtime(
            "recovered image failed the scrub cross-check".into(),
        ));
    }
    Ok(())
}

/// Parses `--fsync always|every-N|interval-Nms|interval-Nus`.
fn parse_fsync(raw: &str) -> Result<mpcbf_durability::FsyncPolicy, CliError> {
    use mpcbf_durability::FsyncPolicy;
    use std::time::Duration;
    if raw == "always" {
        return Ok(FsyncPolicy::Always);
    }
    if let Some(n) = raw.strip_prefix("every-") {
        let n: u32 = n
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| CliError::Usage(format!("bad --fsync batch size in `{raw}`")))?;
        return Ok(FsyncPolicy::EveryN(n));
    }
    if let Some(rest) = raw.strip_prefix("interval-") {
        let (digits, unit): (&str, fn(u64) -> Duration) = match rest.strip_suffix("ms") {
            Some(d) => (d, Duration::from_millis),
            None => match rest.strip_suffix("us") {
                Some(d) => (d, Duration::from_micros),
                None => return Err(CliError::Usage(format!("bad --fsync interval `{raw}`"))),
            },
        };
        let n: u64 = digits
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or_else(|| CliError::Usage(format!("bad --fsync interval `{raw}`")))?;
        return Ok(FsyncPolicy::Interval(unit(n)));
    }
    Err(CliError::Usage(format!(
        "unknown --fsync policy `{raw}` (always|every-N|interval-Nms|interval-Nus)"
    )))
}

/// `mpcbf serve`: recover (or create) a durable sharded MPCBF and serve
/// it over TCP until a client sends the SHUTDOWN opcode.
///
/// Prints the recovery report, then `listening on ADDR` — harnesses
/// (the kill −9 soak bench among them) parse that line to learn the
/// OS-assigned port when `--addr` ends in `:0`.
pub fn serve(opts: &Opts, out: &mut impl Write) -> Result<(), CliError> {
    use mpcbf_durability::DurabilityOptions;
    use mpcbf_server::{Server, ServerConfig};

    let dir = opts.require_dir()?;
    let items = opts.items.unwrap_or(100_000);
    let config = MpcbfConfig::builder()
        .memory_bits(opts.memory_or_default(items))
        .expected_items(items)
        .hashes(opts.hashes)
        .accesses(opts.accesses)
        .seed(opts.seed)
        .build()
        .map_err(|e| CliError::Runtime(format!("infeasible configuration: {e}")))?;
    let fsync = parse_fsync(opts.fsync.as_deref().unwrap_or("always"))?;
    let mut durability = DurabilityOptions::new(dir).fsync(fsync);
    durability.snapshot_every = opts.snapshot_every;

    let server = Server::start(ServerConfig {
        addr: opts.addr.clone().unwrap_or_else(|| "127.0.0.1:7700".into()),
        metrics_addr: opts.metrics_addr.clone(),
        durability,
        filter: config,
        shards: opts.shards.unwrap_or(8),
        elastic: opts.elastic,
    })
    .map_err(|e| CliError::Runtime(format!("server start failed: {e}")))?;

    let report = server.recovery_report();
    writeln!(out, "{report}").map_err(|e| CliError::Runtime(format!("write error: {e}")))?;
    writeln!(out, "listening on {}", server.local_addr())
        .map_err(|e| CliError::Runtime(format!("write error: {e}")))?;
    if let Some(m) = server.metrics_addr() {
        writeln!(out, "metrics on http://{m}/metrics")
            .map_err(|e| CliError::Runtime(format!("write error: {e}")))?;
    }
    out.flush()
        .map_err(|e| CliError::Runtime(format!("write error: {e}")))?;

    server
        .wait()
        .map_err(|e| CliError::Runtime(format!("server stopped uncleanly: {e}")))
}

/// `mpcbf replay`: run a flow-monitor measurement over a real trace file
/// (one `src,dst` record per line; dotted IPv4 or raw u32 fields), the
/// §IV.D experiment on the user's own data.
///
/// With `--telemetry`, every operation is metered into a
/// [`mpcbf_telemetry::Telemetry`] registry (per-kind accesses, hash bits
/// and latency, plus the filter's health gauges) and the Prometheus text
/// page is appended to the report.
pub fn replay(opts: &Opts, out: &mut impl Write) -> Result<(), CliError> {
    use mpcbf_core::metrics::{OpCost, OpKind, OpSink};
    use mpcbf_hash::Key as _;
    use mpcbf_telemetry::{prometheus_text, Telemetry};
    use mpcbf_workloads::flowtrace::{parse_trace_records, FlowTrace};
    use std::time::Instant;

    let path = opts
        .input
        .as_deref()
        .ok_or_else(|| CliError::Usage("--input TRACE is required".into()))?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Runtime(format!("cannot read {path}: {e}")))?;
    let records =
        parse_trace_records(&text).map_err(|e| CliError::Runtime(format!("{path}: {e}")))?;
    if records.is_empty() {
        return Err(CliError::Runtime(format!("{path}: no records")));
    }

    // Track either --items flows or half the unique flows, whichever is
    // smaller; one churn period of 20%.
    let unique = {
        let set: std::collections::HashSet<_> = records.iter().collect();
        set.len()
    };
    let test_set = opts
        .items
        .map(|n| n as usize)
        .unwrap_or(unique / 2)
        .clamp(1, unique);
    let trace = FlowTrace::from_records(records, test_set, test_set / 5, 1, opts.seed);
    let memory = opts.memory_or_default(test_set as u64);

    let config = MpcbfConfig::builder()
        .memory_bits(memory)
        .expected_items(test_set as u64)
        .hashes(opts.hashes)
        .accesses(opts.accesses)
        .seed(opts.seed)
        .build()
        .map_err(|e| CliError::Runtime(format!("infeasible configuration: {e}")))?;
    let mut filter: Mpcbf<u64, Murmur3> = Mpcbf::new(config);

    let telemetry = opts.telemetry.then(Telemetry::new);
    // Metered update path: same placement as the scalar call, but the
    // per-op cost and wall time land in the registry.
    let metered_update = |filter: &mut Mpcbf<u64, Murmur3>,
                          t: &Telemetry,
                          kind: OpKind,
                          flow: &(u32, u32)|
     -> bool {
        let kb = flow.key_bytes();
        let t0 = Instant::now();
        let result = match kind {
            OpKind::Insert => filter.insert_bytes_cost(kb.as_slice()),
            _ => filter.remove_bytes_cost(kb.as_slice()),
        };
        let nanos = t0.elapsed().as_nanos() as u64;
        match result {
            Ok(cost) => {
                t.record_batch(kind, 1, cost, nanos);
                true
            }
            Err(_) => {
                t.record_batch(kind, 1, OpCost::zero(), nanos);
                false
            }
        }
    };

    let mut live: std::collections::HashSet<(u32, u32)> = Default::default();
    let mut refused = 0u64;
    for flow in &trace.test_set {
        let ok = match &telemetry {
            Some(t) => metered_update(&mut filter, t, OpKind::Insert, flow),
            None => filter.insert(flow).is_ok(),
        };
        if ok {
            live.insert(*flow);
        } else {
            refused += 1;
        }
    }
    for period in &trace.churn.periods {
        for old in &period.deletes {
            let ok = match &telemetry {
                Some(t) => metered_update(&mut filter, t, OpKind::Remove, old),
                None => filter.remove(old).is_ok(),
            };
            if ok {
                live.remove(old);
            }
        }
        for new in &period.inserts {
            let ok = match &telemetry {
                Some(t) => metered_update(&mut filter, t, OpKind::Insert, new),
                None => filter.insert(new).is_ok(),
            };
            if ok {
                live.insert(*new);
            }
        }
    }

    let start = std::time::Instant::now();
    let mut hits = 0u64;
    let mut false_positives = 0u64;
    let mut negatives = 0u64;
    for record in &trace.records {
        let claimed = match &telemetry {
            Some(t) => {
                let kb = record.key_bytes();
                let t0 = Instant::now();
                let (hit, cost) = filter.contains_bytes_cost(kb.as_slice());
                t.record_batch(OpKind::Query, 1, cost, t0.elapsed().as_nanos() as u64);
                hit
            }
            None => filter.contains(record),
        };
        hits += u64::from(claimed);
        if !live.contains(record) {
            negatives += 1;
            false_positives += u64::from(claimed);
        }
    }
    let elapsed = start.elapsed();

    let mut p = |line: String| {
        writeln!(out, "{line}").map_err(|e| CliError::Runtime(format!("write error: {e}")))
    };
    p(format!("trace records     {}", trace.records.len()))?;
    p(format!("unique flows      {unique}"))?;
    p(format!("tracked flows     {test_set} ({refused} refused)"))?;
    p(format!(
        "filter memory     {memory} bits (MPCBF-{})",
        opts.accesses
    ))?;
    p(format!("tracked hits      {hits}"))?;
    p(format!(
        "false positives   {false_positives} / {negatives} untracked records ({:.4}%)",
        if negatives == 0 {
            0.0
        } else {
            100.0 * false_positives as f64 / negatives as f64
        }
    ))?;
    p(format!(
        "lookup rate       {:.1} M records/s",
        trace.records.len() as f64 / elapsed.as_secs_f64() / 1e6
    ))?;
    if let Some(t) = &telemetry {
        t.record_health(&filter.health());
        p(String::new())?;
        p(prometheus_text(&t.snapshot()).trim_end().to_string())?;
    }
    Ok(())
}

/// `mpcbf size`: the inverse-sizing design card.
pub fn size(opts: &Opts, out: &mut impl Write) -> Result<(), CliError> {
    let items = opts.require_items()?;
    let fpr = opts
        .fpr
        .ok_or_else(|| CliError::Usage("--fpr F is required".into()))?;
    let mut p = |line: String| {
        writeln!(out, "{line}").map_err(|e| CliError::Runtime(format!("write error: {e}")))
    };
    p(format!("target: {items} items at FPR <= {fpr}"))?;
    match tradeoff::cbf_memory_for_fpr(items, opts.hashes, fpr) {
        Some(m) => p(format!(
            "CBF (k={}):      {m} bits ({:.1} bits/item, {} accesses/query)",
            opts.hashes,
            m as f64 / items as f64,
            opts.hashes
        ))?,
        None => p(format!("CBF (k={}):      unreachable", opts.hashes))?,
    }
    match tradeoff::mpcbf_memory_for_fpr(items, 64, opts.hashes, opts.accesses, fpr) {
        Some(m) => p(format!(
            "MPCBF-{} (k={}):  {m} bits ({:.1} bits/item, {} accesses/query)",
            opts.accesses,
            opts.hashes,
            m as f64 / items as f64,
            opts.accesses
        ))?,
        None => p(format!("MPCBF-{}:        unreachable", opts.accesses))?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(v: &[&str]) -> impl Iterator<Item = Result<String, CliError>> {
        v.iter()
            .map(|s| Ok(s.to_string()))
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn opts(v: &[&str]) -> Opts {
        Opts::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("mpcbf-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn build_query_roundtrip() {
        let path = tmp("roundtrip.mpcbf");
        let o = opts(&["--out", &path, "--items", "100"]);
        build(&o, &mut keys(&["alpha", "beta", "gamma"])).unwrap();

        let o = opts(&["--filter", &path]);
        let mut out = Vec::new();
        query(&o, &mut keys(&["alpha", "delta"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("alpha\ttrue"));
        assert!(text.contains("delta\t")); // value may rarely be a FP
    }

    #[test]
    fn build_cbf_kind_and_stats() {
        let path = tmp("cbf.bin");
        let o = opts(&["--out", &path, "--items", "50", "--kind", "cbf"]);
        build(&o, &mut keys(&["x", "y"])).unwrap();
        let o = opts(&["--filter", &path]);
        let mut out = Vec::new();
        stats(&o, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("kind          CBF"));
        assert!(text.contains("items         2"));
    }

    #[test]
    fn insert_and_remove_update_the_file() {
        let path = tmp("update.mpcbf");
        build(
            &opts(&["--out", &path, "--items", "100"]),
            &mut keys(&["keep"]),
        )
        .unwrap();
        update(&opts(&["--filter", &path]), &mut keys(&["added"]), true).unwrap();
        let mut out = Vec::new();
        query(&opts(&["--filter", &path]), &mut keys(&["added"]), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("added\ttrue"));

        update(&opts(&["--filter", &path]), &mut keys(&["added"]), false).unwrap();
        let mut out = Vec::new();
        query(&opts(&["--filter", &path]), &mut keys(&["added"]), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("added\tfalse"));
    }

    #[test]
    fn mpcbf_stats_report_shape() {
        let path = tmp("stats.mpcbf");
        build(
            &opts(&["--out", &path, "--items", "1000", "--accesses", "2"]),
            &mut keys(&["a", "b", "c"]),
        )
        .unwrap();
        let mut out = Vec::new();
        stats(&opts(&["--filter", &path]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("MPCBF-2"), "{text}");
        assert!(text.contains("items         3"));
    }

    #[test]
    fn size_prints_both_structures() {
        let mut out = Vec::new();
        size(&opts(&["--items", "100000", "--fpr", "0.001"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("CBF (k=3)"));
        assert!(text.contains("MPCBF-1"));
    }

    #[test]
    fn infeasible_cbf_budget_is_a_runtime_error_not_a_panic() {
        // 2 bits cannot hold a single 4-bit counter: the fallible
        // constructor must surface this as a runtime error.
        let path = tmp("tiny.bin");
        let o = opts(&[
            "--out",
            &path,
            "--items",
            "5",
            "--kind",
            "cbf",
            "--memory-bits",
            "2",
        ]);
        let err = build(&o, &mut keys(&["x"])).unwrap_err();
        assert!(matches!(err, CliError::Runtime(ref m) if m.contains("infeasible")));
    }

    #[test]
    fn corrupt_image_reports_the_precise_codec_error() {
        // A flipped payload byte in an MPCBF image must surface the MPCBF
        // decoder's checksum diagnosis, not the CBF fallback's
        // "unknown filter kind" rejection of the MPCBF kind byte.
        let path = tmp("corrupt.mpcbf");
        let o = opts(&["--out", &path, "--items", "100"]);
        build(&o, &mut keys(&["alpha", "beta"])).unwrap();
        let mut image = std::fs::read(&path).unwrap();
        let mid = image.len() / 2;
        image[mid] ^= 0x40;
        std::fs::write(&path, &image).unwrap();
        let err = match AnyFilter::load(&path) {
            Err(e) => e,
            Ok(_) => panic!("corrupt image decoded"),
        };
        assert!(
            matches!(err, CliError::Runtime(ref m) if m.contains("checksum mismatch")),
            "got: {err:?}"
        );
    }

    #[test]
    fn missing_flags_are_usage_errors() {
        assert!(matches!(
            build(&opts(&["--items", "5"]), &mut keys(&[])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            size(&opts(&["--items", "5"]), &mut Vec::new()),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn replay_runs_on_a_tiny_trace() {
        let path = tmp("trace.txt");
        let mut text = String::from("# tiny trace\n");
        for i in 0..200u32 {
            // 50 unique flows, repeated 4x each.
            text.push_str(&format!("10.0.0.{},192.168.1.{}\n", i % 50, i % 50));
        }
        std::fs::write(&path, text).unwrap();
        let mut out = Vec::new();
        replay(&opts(&["--input", &path, "--items", "20"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("trace records     200"), "{text}");
        assert!(text.contains("unique flows      50"));
        assert!(text.contains("tracked flows     20"));
    }

    #[test]
    fn replay_telemetry_prints_a_metrics_page() {
        let path = tmp("trace_telemetry.txt");
        let mut text = String::from("# tiny trace\n");
        for i in 0..200u32 {
            text.push_str(&format!("10.0.0.{},192.168.1.{}\n", i % 50, i % 50));
        }
        std::fs::write(&path, text).unwrap();
        let mut out = Vec::new();
        replay(
            &opts(&["--input", &path, "--items", "20", "--telemetry"]),
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        // The human report is intact and the Prometheus page follows it.
        assert!(text.contains("trace records     200"), "{text}");
        assert!(
            text.contains("mpcbf_ops_total{kind=\"query\"} 200"),
            "{text}"
        );
        assert!(text.contains("mpcbf_ops_total{kind=\"insert\"}"), "{text}");
        assert!(text.contains("mpcbf_fill_ratio"), "{text}");
        // MPCBF-1 (the default) reads exactly one word per query.
        assert!(
            text.contains("mpcbf_word_accesses_total{kind=\"query\"} 200"),
            "{text}"
        );
    }

    #[test]
    fn replay_rejects_garbage_traces() {
        let path = tmp("bad_trace.txt");
        std::fs::write(&path, "not,an,ip address here\n").unwrap();
        assert!(matches!(
            replay(&opts(&["--input", &path]), &mut Vec::new()),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn corrupt_file_is_a_runtime_error() {
        let path = tmp("garbage.bin");
        std::fs::write(&path, b"not a filter").unwrap();
        assert!(matches!(
            stats(&opts(&["--filter", &path]), &mut Vec::new()),
            Err(CliError::Runtime(_))
        ));
    }

    #[test]
    fn bulk_build_writes_the_same_snapshot_as_sequential() {
        // Same keys, same config: the bulk path must serialise a
        // byte-identical filter image to the scalar build path.
        let seq = tmp("seq.mpcbf");
        let blk = tmp("bulk.mpcbf");
        let stream = ["alpha", "beta", "gamma", "delta", "alpha"];
        build(
            &opts(&["--out", &seq, "--items", "100"]),
            &mut keys(&stream),
        )
        .unwrap();
        build(
            &opts(&["--bulk", "--out", &blk, "--items", "100"]),
            &mut keys(&stream),
        )
        .unwrap();
        assert_eq!(
            std::fs::read(&seq).unwrap(),
            std::fs::read(&blk).unwrap(),
            "bulk and sequential snapshots differ"
        );

        let o = opts(&["--filter", &blk]);
        let mut out = Vec::new();
        query(&o, &mut keys(&["alpha", "zeta"]), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("alpha\ttrue"), "{text}");
    }

    #[test]
    fn bulk_build_dir_cold_starts_without_replay() {
        use mpcbf_concurrent::ShardedMpcbf;
        use mpcbf_durability::{DurabilityOptions, DurableShardedMpcbf};

        let dir = tmp("bulk-dir");
        let _ = std::fs::remove_dir_all(&dir);
        let o = opts(&[
            "--bulk",
            "--synthetic",
            "2000",
            "--items",
            "2000",
            "--dir",
            &dir,
            "--shards",
            "4",
        ]);
        build(&o, &mut keys(&[])).unwrap();

        let config = MpcbfConfig::builder()
            .memory_bits(o.memory_or_default(2000))
            .expected_items(2000)
            .hashes(o.hashes)
            .accesses(o.accesses)
            .seed(o.seed)
            .build()
            .unwrap();
        let (recovered, report) =
            DurableShardedMpcbf::<Murmur3>::open_or_recover(DurabilityOptions::new(&dir), || {
                ShardedMpcbf::new(config, 4)
            })
            .unwrap();
        assert_eq!(report.records_replayed, 0, "bootstrap dir replayed WAL");
        assert_eq!(report.snapshot_seq, Some(0));
        assert!(recovered.inner().total_load() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
