//! Flag parsing for the `mpcbf` CLI (no external dependencies).

/// Usage text shown on `--help` and usage errors.
pub const USAGE: &str = "\
mpcbf — Multiple-Partitioned Counting Bloom Filters (IPDPS 2013)

commands:
  build   --out FILE --items N [--memory-bits M] [--hashes K]
          [--accesses G] [--kind mpcbf|cbf] [--seed S] [--input FILE]
            build a filter from newline-separated keys (default stdin)
          [--bulk] [--threads T] [--synthetic N] [--dir DIR [--shards P]]
            with --bulk, ingest through the cache-bucketed streaming
            builder (mpcbf kind only): --synthetic N generates N
            deterministic keys instead of reading --input/stdin;
            --threads T parallelises the region sweeps; with --dir
            instead of --out, bulk-build a sharded filter and write a
            durable snapshot directory that `mpcbf serve`/`recover`
            cold-start from without any WAL replay
  query   --filter FILE [--input FILE]
            print `key<TAB>true|false` per key
  insert  --filter FILE [--input FILE]
            insert keys, rewriting the filter file
  remove  --filter FILE [--input FILE]
            remove keys, rewriting the filter file
  stats   --filter FILE
            print shape, population and load statistics
  size    --items N --fpr F [--hashes K] [--accesses G]
            memory needed by CBF vs MPCBF for a target FPR
  replay  --input TRACE [--items N] [--memory-bits M] [--hashes K]
            [--accesses G] [--telemetry]
            replay a flow trace file (`src,dst` per line, dotted IPv4 or
            u32) through an MPCBF flow monitor and report FPR + rates;
            with --telemetry, meter every operation and print a
            Prometheus metrics page after the report
  recover --dir DIR [--items N] [--memory-bits M] [--hashes K]
          [--accesses G] [--seed S] [--input FILE]
            open-or-recover a durable MPCBF (snapshot + WAL replay,
            torn tails repaired) and print the recovery report; a fresh
            DIR is initialised from the shape flags; with --input, the
            keys are then inserted durably and a snapshot is taken
  serve   --dir DIR [--addr HOST:PORT] [--metrics-addr HOST:PORT]
          [--shards P] [--fsync always|every-N|interval-Nms|interval-Nus]
          [--snapshot-every N] [--elastic] [--items N] [--memory-bits M]
          [--hashes K] [--accesses G] [--seed S]
            recover (or create) a durable sharded MPCBF in DIR and serve
            it over TCP (length-prefixed frame protocol; see
            mpcbf-server); prints `listening on ADDR`, then blocks until
            a client sends SHUTDOWN; acked mutations are WAL-logged
            under the chosen fsync policy before the reply; with
            --elastic, shards autoscale under overload (scale-ups are
            WAL-logged, mutations shed RETRY_LATER while a shard
            reorganises) — a DIR keeps its mode for life

defaults: --hashes 3, --accesses 1, --kind mpcbf, --seed 1,
          --memory-bits = 16 bits/item, --addr 127.0.0.1:7700,
          --shards 8, --fsync always";

/// CLI failure modes.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation; usage is printed.
    Usage(String),
    /// Runtime failure (I/O, decode, infeasible config).
    Runtime(String),
}

/// Which filter structure `build` produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// MPCBF over 64-bit words (default).
    Mpcbf,
    /// Standard 4-bit-counter CBF.
    Cbf,
}

/// Parsed flags (a superset across commands; each command reads its own).
#[derive(Debug, Clone)]
pub struct Opts {
    pub out: Option<String>,
    pub filter: Option<String>,
    pub input: Option<String>,
    pub dir: Option<String>,
    pub memory_bits: Option<u64>,
    pub items: Option<u64>,
    pub hashes: u32,
    pub accesses: u32,
    pub kind: Kind,
    pub seed: u64,
    pub fpr: Option<f64>,
    pub telemetry: bool,
    pub addr: Option<String>,
    pub metrics_addr: Option<String>,
    pub shards: Option<usize>,
    pub fsync: Option<String>,
    pub snapshot_every: Option<u64>,
    pub elastic: bool,
    pub bulk: bool,
    pub threads: Option<usize>,
    pub synthetic: Option<u64>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            out: None,
            filter: None,
            input: None,
            dir: None,
            memory_bits: None,
            items: None,
            hashes: 3,
            accesses: 1,
            kind: Kind::Mpcbf,
            seed: 1,
            fpr: None,
            telemetry: false,
            addr: None,
            metrics_addr: None,
            shards: None,
            fsync: None,
            snapshot_every: None,
            elastic: false,
            bulk: false,
            threads: None,
            synthetic: None,
        }
    }
}

impl Opts {
    /// Parses flags following the command word.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut opts = Opts::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--out" => opts.out = Some(value("--out")?),
                "--filter" => opts.filter = Some(value("--filter")?),
                "--input" => opts.input = Some(value("--input")?),
                "--dir" => opts.dir = Some(value("--dir")?),
                "--memory-bits" => {
                    opts.memory_bits = Some(parse_num(&value("--memory-bits")?, "--memory-bits")?)
                }
                "--items" => opts.items = Some(parse_num(&value("--items")?, "--items")?),
                "--hashes" => opts.hashes = parse_num(&value("--hashes")?, "--hashes")? as u32,
                "--accesses" => {
                    opts.accesses = parse_num(&value("--accesses")?, "--accesses")? as u32
                }
                "--seed" => opts.seed = parse_num(&value("--seed")?, "--seed")?,
                "--fpr" => {
                    let raw = value("--fpr")?;
                    let f: f64 = raw
                        .parse()
                        .map_err(|_| CliError::Usage(format!("bad --fpr value `{raw}`")))?;
                    if !(f > 0.0 && f < 1.0) {
                        return Err(CliError::Usage("--fpr must be in (0, 1)".into()));
                    }
                    opts.fpr = Some(f);
                }
                "--telemetry" => opts.telemetry = true,
                "--elastic" => opts.elastic = true,
                "--bulk" => opts.bulk = true,
                "--threads" => {
                    let n = parse_num(&value("--threads")?, "--threads")?;
                    if n == 0 {
                        return Err(CliError::Usage("--threads must be positive".into()));
                    }
                    opts.threads = Some(n as usize);
                }
                "--synthetic" => {
                    opts.synthetic = Some(parse_num(&value("--synthetic")?, "--synthetic")?)
                }
                "--addr" => opts.addr = Some(value("--addr")?),
                "--metrics-addr" => opts.metrics_addr = Some(value("--metrics-addr")?),
                "--shards" => {
                    let n = parse_num(&value("--shards")?, "--shards")?;
                    if n == 0 {
                        return Err(CliError::Usage("--shards must be positive".into()));
                    }
                    opts.shards = Some(n as usize);
                }
                "--fsync" => opts.fsync = Some(value("--fsync")?),
                "--snapshot-every" => {
                    opts.snapshot_every =
                        Some(parse_num(&value("--snapshot-every")?, "--snapshot-every")?)
                }
                "--kind" => {
                    opts.kind = match value("--kind")?.as_str() {
                        "mpcbf" => Kind::Mpcbf,
                        "cbf" => Kind::Cbf,
                        other => {
                            return Err(CliError::Usage(format!(
                                "unknown --kind `{other}` (mpcbf|cbf)"
                            )))
                        }
                    }
                }
                other => return Err(CliError::Usage(format!("unknown flag `{other}`"))),
            }
        }
        Ok(opts)
    }

    /// `--items`, required.
    pub fn require_items(&self) -> Result<u64, CliError> {
        self.items
            .filter(|&n| n > 0)
            .ok_or_else(|| CliError::Usage("--items N (positive) is required".into()))
    }

    /// `--filter`, required.
    pub fn require_filter(&self) -> Result<&str, CliError> {
        self.filter
            .as_deref()
            .ok_or_else(|| CliError::Usage("--filter FILE is required".into()))
    }

    /// `--dir`, required (durable-filter commands).
    pub fn require_dir(&self) -> Result<&str, CliError> {
        self.dir
            .as_deref()
            .ok_or_else(|| CliError::Usage("--dir DIR is required".into()))
    }

    /// Memory budget: explicit, or the 16-bits/item default.
    pub fn memory_or_default(&self, items: u64) -> u64 {
        self.memory_bits.unwrap_or(16 * items.max(1))
    }
}

fn parse_num(raw: &str, flag: &str) -> Result<u64, CliError> {
    // Accept underscores and k/M suffixes for ergonomics.
    let cleaned = raw.replace('_', "");
    let (digits, mult) = match cleaned.strip_suffix(['k', 'K']) {
        Some(d) => (d.to_string(), 1_000u64),
        None => match cleaned.strip_suffix('M') {
            Some(d) => (d.to_string(), 1_000_000u64),
            None => (cleaned, 1),
        },
    };
    digits
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| CliError::Usage(format!("bad numeric value `{raw}` for {flag}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Opts, CliError> {
        Opts::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.hashes, 3);
        assert_eq!(o.accesses, 1);
        assert_eq!(o.kind, Kind::Mpcbf);
        assert_eq!(o.memory_or_default(1000), 16_000);
    }

    #[test]
    fn full_build_flags() {
        let o = parse(&[
            "--out",
            "f.bin",
            "--items",
            "100k",
            "--memory-bits",
            "4M",
            "--hashes",
            "4",
            "--accesses",
            "2",
            "--kind",
            "cbf",
            "--seed",
            "9",
        ])
        .unwrap();
        assert_eq!(o.out.as_deref(), Some("f.bin"));
        assert_eq!(o.items, Some(100_000));
        assert_eq!(o.memory_bits, Some(4_000_000));
        assert_eq!(o.hashes, 4);
        assert_eq!(o.accesses, 2);
        assert_eq!(o.kind, Kind::Cbf);
        assert_eq!(o.seed, 9);
    }

    #[test]
    fn telemetry_flag_defaults_off() {
        assert!(!parse(&[]).unwrap().telemetry);
        assert!(parse(&["--telemetry"]).unwrap().telemetry);
    }

    #[test]
    fn numeric_suffixes_and_underscores() {
        let o = parse(&["--items", "1_000_000"]).unwrap();
        assert_eq!(o.items, Some(1_000_000));
        let o = parse(&["--items", "5k"]).unwrap();
        assert_eq!(o.items, Some(5_000));
    }

    #[test]
    fn errors_are_usage_errors() {
        assert!(matches!(parse(&["--bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(parse(&["--items"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&["--items", "abc"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(parse(&["--fpr", "1.5"]), Err(CliError::Usage(_))));
        assert!(matches!(
            parse(&["--kind", "weird"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn serve_flags() {
        let o = parse(&[
            "--dir",
            "d",
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:9100",
            "--shards",
            "16",
            "--fsync",
            "every-64",
            "--snapshot-every",
            "10k",
            "--elastic",
        ])
        .unwrap();
        assert!(o.elastic);
        assert!(!parse(&["--dir", "d"]).unwrap().elastic);
        assert_eq!(o.addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(o.metrics_addr.as_deref(), Some("127.0.0.1:9100"));
        assert_eq!(o.shards, Some(16));
        assert_eq!(o.fsync.as_deref(), Some("every-64"));
        assert_eq!(o.snapshot_every, Some(10_000));
        assert!(matches!(parse(&["--shards", "0"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn bulk_flags() {
        let o = parse(&["--bulk", "--threads", "4", "--synthetic", "1M"]).unwrap();
        assert!(o.bulk);
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.synthetic, Some(1_000_000));
        let o = parse(&[]).unwrap();
        assert!(!o.bulk);
        assert_eq!(o.threads, None);
        assert_eq!(o.synthetic, None);
        assert!(matches!(
            parse(&["--threads", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn require_helpers() {
        let o = parse(&[]).unwrap();
        assert!(o.require_items().is_err());
        assert!(o.require_filter().is_err());
        assert!(o.require_dir().is_err());
        let o = parse(&["--items", "5", "--filter", "x", "--dir", "d"]).unwrap();
        assert_eq!(o.require_items().unwrap(), 5);
        assert_eq!(o.require_filter().unwrap(), "x");
        assert_eq!(o.require_dir().unwrap(), "d");
    }
}
