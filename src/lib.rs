//! # mpcbf — Multiple-Partitioned Counting Bloom Filters
//!
//! Facade crate for the MPCBF workspace, a production-quality Rust
//! reproduction of *"A Multi-Partitioning Approach to Building Fast and
//! Accurate Counting Bloom Filters"* (Huang et al., IEEE IPDPS 2013).
//!
//! This crate re-exports the workspace members under stable module names so
//! downstream users need a single dependency:
//!
//! * [`core`] — the filters: Bloom, CBF, BF-1, PCBF-1/g, HCBF, MPCBF-1/g.
//! * [`hash`] — hash substrate (Murmur3, xxHash64, FNV, double hashing,
//!   hash-bit accounting).
//! * [`bitvec`] — packed counter vectors, bit vectors, generic words.
//! * [`analysis`] — the paper's analytical models (false-positive-rate
//!   formulas, overflow bounds, optimal-k search).
//! * [`variants`] — related-work comparators (d-left CBF, VI-CBF).
//! * [`concurrent`] — thread-safe MPCBF variants.
//! * [`durability`] — write-ahead log, snapshots, and crash recovery
//!   (`DurableFilter`, `DurableShardedMpcbf`, kill-point drills).
//! * [`telemetry`] — latency histograms, counters/gauges, Prometheus-text
//!   and JSON exporters fed by the metered batch operations.
//! * [`workloads`] — synthetic-string, flow-trace and patent workloads.
//! * [`mapreduce`] — mini MapReduce engine with filter-pushdown joins.
//! * [`server`] — filter-as-a-service: a durable multi-core TCP server
//!   over the sharded filter, plus the blocking [`server::Client`].
//!
//! ## Quickstart
//!
//! ```
//! use mpcbf::prelude::*;
//!
//! // 1 MiB of memory, expecting ~100k elements, one memory access per op.
//! let config = MpcbfConfig::builder()
//!     .memory_bits(8 << 20)
//!     .expected_items(100_000)
//!     .hashes(3)
//!     .build()
//!     .unwrap();
//! let mut filter = Mpcbf1::new(config);
//!
//! filter.insert(&"alice").unwrap();
//! filter.insert(&"bob").unwrap();
//! assert!(filter.contains(&"alice"));
//! filter.remove(&"bob").unwrap();
//! assert!(!filter.contains(&"bob"));
//! ```

pub use mpcbf_analysis as analysis;
pub use mpcbf_bitvec as bitvec;
pub use mpcbf_concurrent as concurrent;
pub use mpcbf_core as core;
pub use mpcbf_durability as durability;
pub use mpcbf_hash as hash;
pub use mpcbf_mapreduce as mapreduce;
pub use mpcbf_server as server;
pub use mpcbf_telemetry as telemetry;
pub use mpcbf_variants as variants;
pub use mpcbf_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use mpcbf_core::prelude::*;
    pub use mpcbf_hash::{Hasher128, Key, Murmur3};
}
