//! Offline stand-in for `criterion`: same call surface
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`), minimal statistics. Each benchmark is
//! calibrated from a single timed probe, then run for `sample_size`
//! samples inside the configured measurement window; the mean and
//! min/max per-iteration times are printed to stdout.
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets) every routine runs exactly once, so the suite stays fast
//! and benches double as smoke tests.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier for one benchmark: a function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("insert", 64)` renders as `insert/64`.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion accepted wherever criterion takes a benchmark name.
pub trait IntoBenchmarkId {
    /// Renders the full benchmark id string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level driver handed to every `criterion_group!` target.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness=false bench binaries with `--test`;
        // `cargo bench` passes `--bench` plus optional filters.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            throughput: None,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// A set of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target wall-clock budget for the sampling phase.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for the calibration phase.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets per-iteration throughput used in derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let label = self.qualify(id.into_benchmark_id());
        self.run(&label, &mut f);
    }

    /// Runs one benchmark routine with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = self.qualify(id.into_benchmark_id());
        self.run(&label, &mut |b: &mut Bencher| f(b, input));
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}

    fn qualify(&self, id: String) -> String {
        if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        }
    }

    fn run(&self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{label}: test-mode ok");
            return;
        }

        // Calibrate: grow the per-sample iteration count until one sample
        // costs a measurable slice of the warm-up budget.
        let mut iters = 1u64;
        let floor = (self.warm_up_time / 20).max(Duration::from_micros(50));
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= floor || iters >= u64::MAX / 2 {
                let per_iter = b.elapsed.as_nanos().max(1) as u64 / iters.max(1);
                let budget = self.measurement_time.as_nanos() as u64;
                let per_sample = budget / self.sample_size.max(1) as u64;
                iters = (per_sample / per_iter.max(1)).clamp(1, 1 << 40);
                break;
            }
            iters = iters.saturating_mul(4);
        }

        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        let mut worst = Duration::ZERO;
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            best = best.min(b.elapsed);
            worst = worst.max(b.elapsed);
        }
        let samples = self.sample_size as u64;
        let mean_ns = total.as_nanos() as f64 / (samples * iters) as f64;
        let best_ns = best.as_nanos() as f64 / iters as f64;
        let worst_ns = worst.as_nanos() as f64 / iters as f64;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" ({:.3} Melem/s)", n as f64 / mean_ns * 1e3),
            Throughput::Bytes(n) => format!(
                " ({:.3} MiB/s)",
                n as f64 / mean_ns * 1e9 / (1 << 20) as f64
            ),
        });
        println!(
            "{label}: [{best_ns:.1} ns {mean_ns:.1} ns {worst_ns:.1} ns]{}",
            rate.unwrap_or_default()
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
        assert!(b.elapsed >= Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("insert", 64).into_benchmark_id(),
            "insert/64"
        );
        assert_eq!("plain".into_benchmark_id(), "plain");
    }

    #[test]
    fn group_runs_in_test_mode() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0u32;
        let mut g = c.benchmark_group("unit");
        g.sample_size(50).measurement_time(Duration::from_secs(9));
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.finish();
        assert_eq!(ran, 1, "test mode must run the routine exactly once");
    }
}
