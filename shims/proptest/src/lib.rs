//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses — the
//! `proptest!` macro, `Strategy` with `prop_map`, range/tuple/collection
//! strategies, `any::<T>()`, `prop_oneof!`, and the `prop_assert*`
//! macros — on top of a deterministic splitmix64 generator. Differences
//! from upstream, by design:
//!
//! * **No shrinking.** A failing case panics immediately; the panic
//!   message carries the test name, case index, and RNG seed so the case
//!   replays exactly (`PROPTEST_SHIM_SEED=<seed>` forces it).
//! * **Uniform integer sampling**, matching upstream's range strategies
//!   (upstream's bias machinery lives in domains this workspace never
//!   touches).
//! * `prop_assert*` panic (upstream returns `Err` into the runner); with
//!   no shrinker the distinction is unobservable to callers.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies; one fresh stream per case.
pub struct TestRng {
    state: u64,
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds the stream for `case` of the run seeded with `base`.
    pub fn new(base: u64, case: u64) -> Self {
        TestRng {
            state: splitmix64(base ^ case.wrapping_mul(0xa076_1d64_78bd_642f)),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Unbiased draw in `[0, n)`; `n = 0` means the full 64-bit domain.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return self.next_u64();
        }
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for producing random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives; built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps pre-boxed alternatives. Panics if `options` is empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Integer / bool strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // Span wraps to 0 exactly when the range covers the whole
                // 64-bit domain, which `below` treats as "no bound".
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_strategies {
    ($($t:ty : $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $u).wrapping_sub(lo as $u).wrapping_add(1) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_signed_strategies!(i32: u32, i64: u64);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a full-domain default strategy.
pub trait ArbitraryValue: Sized {
    /// Draws uniformly from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl ArbitraryValue for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for a type's full domain; see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the default full-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Length bound accepted by [`prop::collection::vec`].
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::` namespace mirroring upstream's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Strategy for vectors of `element` values with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-run configuration; only `cases` is meaningful to the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives `body` for `config.cases` deterministic cases. On panic the
/// case index and base seed are reported, then the panic is rethrown.
pub fn run_cases<R, F: FnMut(&mut TestRng) -> R>(config: ProptestConfig, name: &str, mut body: F) {
    let base = match std::env::var("PROPTEST_SHIM_SEED") {
        Ok(v) => v.parse::<u64>().unwrap_or_else(|_| fnv1a(name)),
        Err(_) => fnv1a(name),
    };
    for case in 0..u64::from(config.cases) {
        let mut rng = TestRng::new(base, case);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            body(&mut rng);
        }));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest-shim: property `{name}` failed at case {case}/{} \
                 (base seed {base}; rerun with PROPTEST_SHIM_SEED={base})",
                config.cases
            );
            resume_unwind(panic);
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests; mirrors upstream's `proptest!` surface for
/// `fn name(arg in strategy, ...) { body }` items with an optional
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_cases(config, stringify!($name), |__shim_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __shim_rng);)+
                    $body
                });
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property (panicking flavour).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property (panicking flavour).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property (panicking flavour).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

impl<V> fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1, 0);
        for _ in 0..10_000 {
            let v = Strategy::generate(&(10u32..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(5u64..=7), &mut rng);
            assert!((5..=7).contains(&w));
            let s = Strategy::generate(&(-3i32..=3), &mut rng);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    fn full_u64_domain_terminates() {
        let mut rng = TestRng::new(2, 0);
        for _ in 0..100 {
            let _ = Strategy::generate(&(1u64..=u64::MAX), &mut rng);
            let _ = Strategy::generate(&(0u64..=u64::MAX), &mut rng);
        }
    }

    #[test]
    fn small_ranges_cover_all_values() {
        let mut rng = TestRng::new(3, 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&(0usize..4), &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampling missed a value");
    }

    #[test]
    fn vec_strategy_sizes_and_elements() {
        let mut rng = TestRng::new(4, 0);
        for _ in 0..500 {
            let v = Strategy::generate(&prop::collection::vec(0u8..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&b| b < 10));
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let mut rng = TestRng::new(5, 0);
        let strat = prop_oneof![
            (0u32..1).prop_map(|_| "a"),
            (0u32..1).prop_map(|_| "b"),
            (0u32..1).prop_map(|_| "c"),
        ];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(Strategy::generate(&strat, &mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn tuples_and_just_compose() {
        let mut rng = TestRng::new(6, 0);
        let (a, b, c) = Strategy::generate(&(any::<bool>(), 0usize..4, Just(9u8)), &mut rng);
        let _: bool = a;
        assert!(b < 4);
        assert_eq!(c, 9);
    }

    // The macro itself, end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_runs(
            xs in prop::collection::vec(any::<u64>(), 0..16),
            k in 1u32..=6,
        ) {
            prop_assert!(xs.len() < 16);
            prop_assert!((1..=6).contains(&k));
            prop_assert_eq!(k, k);
            prop_assert_ne!(k, k + 1, "k = {}", k);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let one: Vec<u64> = {
            let mut rng = TestRng::new(7, 3);
            (0..32).map(|_| rng.next_u64()).collect()
        };
        let two: Vec<u64> = {
            let mut rng = TestRng::new(7, 3);
            (0..32).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(one, two);
    }
}
