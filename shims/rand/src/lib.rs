//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`]. The generator is
//! SplitMix64 — statistically fine for workload synthesis, deterministic
//! per seed, and dependency-free. Streams are *not* bit-compatible with
//! upstream `rand`; all reproducibility contracts in this workspace are
//! stated against seeds, not against upstream streams.

/// Marker for range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value in the range using `word` as the entropy source.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The minimal core trait: a stream of 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the full domain of the type.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u8 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u16 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as u16
    }
}
impl Standard for u32 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as u32
    }
}
impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}
impl Standard for u128 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}
impl Standard for usize {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Unbiased draw in `[0, n)` by rejection sampling (Lemire-style bound).
fn uniform_below(rng: &mut dyn RngCore, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize);

impl SampleRange<i32> for core::ops::Range<i32> {
    fn sample(self, rng: &mut dyn RngCore) -> i32 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + uniform_below(rng, span) as i64) as i32
    }
}
impl SampleRange<i32> for core::ops::RangeInclusive<i32> {
    fn sample(self, rng: &mut dyn RngCore) -> i32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi as i64 - lo as i64 + 1) as u64;
        (lo as i64 + uniform_below(rng, span) as i64) as i32
    }
}

/// The user-facing trait: convenience draws over [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform value of `T`'s full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256** seeded via
    /// SplitMix64 (the construction xoshiro's authors recommend).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                *slot = super::splitmix64(x);
            }
            // All-zero state would be a fixed point; the seeding above
            // cannot produce it, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s1 << 17;
            let (mut n2, mut n3) = (s2 ^ s0, s3 ^ s1);
            let n1 = s1 ^ n2;
            let n0 = s0 ^ n3;
            n2 ^= t;
            n3 = n3.rotate_left(45);
            self.s = [n0, n1, n2, n3];
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&w));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(2);
        // Must not panic or loop forever.
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
        let _: u64 = rng.gen_range(1u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1u8, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
