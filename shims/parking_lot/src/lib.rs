//! Offline stand-in for `parking_lot`: a [`Mutex`] with the
//! panic-free `lock()` signature, backed by `std::sync::Mutex`.
//!
//! Poisoning is ignored (parking_lot has no poisoning): a lock held by a
//! panicked thread is simply re-acquired, matching upstream semantics
//! closely enough for this workspace's sharded-filter use.

pub use std::sync::MutexGuard;
use std::sync::TryLockError;

/// A mutual-exclusion primitive with parking_lot's `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking, ignoring poisoning.
    /// Returns `None` if the lock is held by another thread.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_held_locks() {
        let m = Mutex::new(5u32);
        {
            let _held = m.lock();
            // Same-thread re-entry would deadlock on lock(); try_lock must
            // decline instead.
            assert!(m.try_lock().is_none());
        }
        *m.try_lock().expect("uncontended try_lock succeeds") += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
