//! Offline stand-in for `crossbeam`: scoped threads built on
//! `std::thread::scope` (stable since Rust 1.63), exposing the
//! `crossbeam::scope(|s| ...)` / `s.spawn(|_| ...)` call shape this
//! workspace uses.

use std::thread;

/// Error type returned when a scoped thread panics.
pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

/// A scope handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope handle
    /// (unused by this workspace, kept for crossbeam signature parity).
    pub fn spawn<F, T>(&self, f: F) -> thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before
/// this returns. Returns `Err` if any unjoined thread panicked (matching
/// crossbeam's contract; with `std::thread::scope` a leaked panic aborts
/// the parent via resume, so in practice this returns `Ok`).
pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let n = super::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
