//! Cross-implementation contracts for the three MPCBF implementations.
//!
//! The sequential and lock-free filters share salts and layout exactly, so
//! under the same configuration and operation sequence they must be
//! *bit-for-bit interchangeable* for membership.
//!
//! The sharded filter is different by design: it routes each key to a shard
//! using the top [`SHARD_BITS`] of the digest and probes an independent
//! per-shard sub-filter with the remaining bits (see `sharded.rs` for the
//! bit-split). Its answers are therefore not bit-identical to the
//! sequential filter — but it must still be a correct counting filter: no
//! false negatives ever, removals of present keys always succeed, and a
//! false-positive rate in the same regime as the sequential filter.

use mpcbf::concurrent::{AtomicMpcbf, ShardedMpcbf};
use mpcbf::core::{CountingFilter, Filter, Mpcbf, MpcbfConfig};
use mpcbf::hash::Murmur3;

fn config(g: u32) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(500_000)
        .expected_items(5_000)
        .hashes(3)
        .accesses(g)
        .seed(2024)
        .build()
        .unwrap()
}

#[test]
fn atomic_is_bit_compatible_with_sequential() {
    for g in [1u32, 2] {
        let cfg = config(g);
        let mut seq: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        let atomic: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(cfg);

        for i in 0..4_000u64 {
            let a = seq.insert(&i).is_ok();
            let c = atomic.insert(&i).is_ok();
            assert_eq!(a, c, "g={g}: insert {i} diverged (atomic)");
        }
        for i in 0..2_000u64 {
            let a = seq.remove(&i).is_ok();
            let c = atomic.remove(&i).is_ok();
            assert_eq!(a, c, "g={g}: remove {i} diverged (atomic)");
        }
        for probe in 0..30_000u64 {
            let a = seq.contains(&probe);
            assert_eq!(a, atomic.contains(&probe), "g={g}: probe {probe} (atomic)");
        }
    }
}

#[test]
fn sharded_is_a_correct_filter_after_identical_history() {
    for g in [1u32, 2] {
        let cfg = config(g);
        let mut seq: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        let sharded: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, 64);

        for i in 0..4_000u64 {
            seq.insert(&i).unwrap();
            sharded.insert(&i).unwrap();
        }
        for i in 0..2_000u64 {
            seq.remove(&i).unwrap();
            sharded.remove(&i).unwrap();
        }
        // No false negatives on the live keys...
        for i in 2_000..4_000u64 {
            assert!(sharded.contains(&i), "g={g}: false negative on {i}");
        }
        // ...and the stranger false-positive count stays in the same regime
        // as the sequential filter's (layouts differ, so the *sets* of
        // false positives differ; the rates must not).
        let seq_fp = (10_000..40_000u64).filter(|p| seq.contains(p)).count();
        let sharded_fp = (10_000..40_000u64).filter(|p| sharded.contains(p)).count();
        assert!(
            sharded_fp <= 10 * seq_fp.max(3),
            "g={g}: sharded FP count {sharded_fp} out of regime (sequential {seq_fp})"
        );
    }
}

#[test]
fn concurrent_variants_drain_like_sequential() {
    let cfg = config(1);
    let sharded: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, 16);
    let atomic: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(cfg);
    for i in 0..3_000u64 {
        sharded.insert(&i).unwrap();
        atomic.insert(&i).unwrap();
    }
    for i in 0..3_000u64 {
        sharded.remove(&i).unwrap();
        atomic.remove(&i).unwrap();
    }
    assert_eq!(sharded.total_load(), 0);
    assert_eq!(atomic.total_load(), 0);
}

#[test]
fn shard_count_does_not_change_correctness() {
    let cfg = config(2);
    let a: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, 1);
    let b: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, 1024);
    for i in 0..2_000u64 {
        assert_eq!(a.insert(&i).is_ok(), b.insert(&i).is_ok());
    }
    // Different shard counts partition the words differently, so false
    // positives may differ; members must be present in both.
    for i in 0..2_000u64 {
        assert!(a.contains(&i), "1-shard false negative on {i}");
        assert!(b.contains(&i), "1024-shard false negative on {i}");
    }
}
