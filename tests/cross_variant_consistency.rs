//! The three MPCBF implementations — sequential, sharded-lock, lock-free —
//! share salts and layout, so under the same configuration and operation
//! sequence they must be *bit-for-bit interchangeable* for membership.

use mpcbf::concurrent::{AtomicMpcbf, ShardedMpcbf};
use mpcbf::core::{CountingFilter, Filter, Mpcbf, MpcbfConfig};
use mpcbf::hash::Murmur3;

fn config(g: u32) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(500_000)
        .expected_items(5_000)
        .hashes(3)
        .accesses(g)
        .seed(2024)
        .build()
        .unwrap()
}

#[test]
fn all_three_agree_after_identical_history() {
    for g in [1u32, 2] {
        let cfg = config(g);
        let mut seq: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        let sharded: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, 64);
        let atomic: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(cfg);

        for i in 0..4_000u64 {
            let a = seq.insert(&i).is_ok();
            let b = sharded.insert(&i).is_ok();
            let c = atomic.insert(&i).is_ok();
            assert_eq!(a, b, "g={g}: insert {i} diverged (sharded)");
            assert_eq!(a, c, "g={g}: insert {i} diverged (atomic)");
        }
        for i in 0..2_000u64 {
            let a = seq.remove(&i).is_ok();
            let b = sharded.remove(&i).is_ok();
            let c = atomic.remove(&i).is_ok();
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
        for probe in 0..30_000u64 {
            let a = seq.contains(&probe);
            assert_eq!(a, sharded.contains(&probe), "g={g}: probe {probe} (sharded)");
            assert_eq!(a, atomic.contains(&probe), "g={g}: probe {probe} (atomic)");
        }
    }
}

#[test]
fn concurrent_variants_drain_like_sequential() {
    let cfg = config(1);
    let sharded: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, 16);
    let atomic: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(cfg);
    for i in 0..3_000u64 {
        sharded.insert(&i).unwrap();
        atomic.insert(&i).unwrap();
    }
    for i in 0..3_000u64 {
        sharded.remove(&i).unwrap();
        atomic.remove(&i).unwrap();
    }
    assert_eq!(sharded.total_load(), 0);
    assert_eq!(atomic.total_load(), 0);
}

#[test]
fn shard_count_does_not_change_semantics() {
    let cfg = config(2);
    let a: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, 1);
    let b: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, 1024);
    for i in 0..2_000u64 {
        assert_eq!(a.insert(&i).is_ok(), b.insert(&i).is_ok());
    }
    for probe in 0..20_000u64 {
        assert_eq!(a.contains(&probe), b.contains(&probe), "probe {probe}");
    }
}
