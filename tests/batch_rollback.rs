//! Batch all-or-nothing rollback: when a key inside a batch fails
//! (overflow on insert, absence on remove), that key's partial updates
//! must be rolled back completely — the filter ends bit-identical to the
//! state a scalar replay of the same batch produces, and a batch whose
//! every key fails leaves the filter bit-identical to its pre-batch
//! state. Verified for each variant that can refuse an operation.

use mpcbf::concurrent::{AtomicMpcbf, ShardedMpcbf};
use mpcbf::core::{CountingFilter, Filter, Mpcbf, MpcbfConfig, ResilientMpcbf};
use mpcbf::hash::Murmur3;
use mpcbf::variants::DlCbf;

/// A shape with word capacity 3 (k·n_max = 3), so a handful of copies of
/// one key saturates its words.
fn tight_config(word_bits: u32, seed: u64) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(64 * u64::from(word_bits))
        .expected_items(1_000)
        .hashes(3)
        .n_max(1)
        .word_bits(word_bits)
        .seed(seed)
        .build()
        .unwrap()
}

/// Fills `hot` until the filter refuses it, then asserts that a batch of
/// further copies fails wholesale and leaves `fingerprint(f)` unchanged,
/// and that a mixed batch matches its scalar replay exactly.
fn assert_insert_rollback<F, S>(mut f: F, fingerprint: impl Fn(&F) -> S, label: &str)
where
    F: Filter + Clone,
    S: PartialEq + std::fmt::Debug,
{
    let hot = b"hot-key".as_slice();
    let mut stored = 0u32;
    while f.insert_bytes_cost(hot).is_ok() {
        stored += 1;
        assert!(stored < 10_000, "{label}: hot key never overflows");
    }
    let before = fingerprint(&f);

    // Every copy in this batch must fail, and fail cleanly.
    let all_hot: Vec<&[u8]> = vec![hot; 12];
    let (results, _) = f.insert_batch_cost(&all_hot);
    assert!(
        results.iter().all(Result::is_err),
        "{label}: saturated key accepted a batched copy"
    );
    assert_eq!(
        fingerprint(&f),
        before,
        "{label}: failed batch left residue"
    );

    // Mixed batch: failing copies interleaved with fresh keys must land
    // exactly as the scalar loop lands them.
    let fresh: Vec<Vec<u8>> = (0..6u32)
        .map(|i| format!("fresh-{i}").into_bytes())
        .collect();
    let mut batch: Vec<&[u8]> = Vec::new();
    for k in &fresh {
        batch.push(hot);
        batch.push(k.as_slice());
    }
    let mut scalar_f = f.clone();
    let scalar_ok: Vec<bool> = batch
        .iter()
        .map(|k| scalar_f.insert_bytes_cost(k).is_ok())
        .collect();
    let (batched, _) = f.insert_batch_cost(&batch);
    let batched_ok: Vec<bool> = batched.iter().map(Result::is_ok).collect();
    assert_eq!(batched_ok, scalar_ok, "{label}: batch/scalar divergence");
    assert_eq!(
        fingerprint(&f),
        fingerprint(&scalar_f),
        "{label}: mixed batch state differs from scalar replay"
    );
}

/// Asserts that removing absent keys in a batch rolls back per key: the
/// batch result and final state match the scalar replay, and a batch of
/// only-absent keys leaves the filter untouched.
fn assert_remove_rollback<F, S>(mut f: F, fingerprint: impl Fn(&F) -> S, label: &str)
where
    F: CountingFilter + Clone,
    S: PartialEq + std::fmt::Debug,
{
    for i in 0..40u32 {
        f.insert_bytes_cost(format!("live-{i}").into_bytes().as_slice())
            .unwrap();
    }
    let before = fingerprint(&f);
    let ghosts: Vec<Vec<u8>> = (0..8u32)
        .map(|i| format!("ghost-{i}").into_bytes())
        .collect();
    let ghost_views: Vec<&[u8]> = ghosts.iter().map(|g| g.as_slice()).collect();
    let (results, _) = f.remove_batch_cost(&ghost_views);
    // False positives may let a ghost "remove" succeed; what matters is
    // that every *failed* removal left no trace, which the scalar
    // comparison below pins down. If all failed, state is untouched.
    if results.iter().all(Result::is_err) {
        assert_eq!(
            fingerprint(&f),
            before,
            "{label}: failed removals left residue"
        );
    }

    let mixed: Vec<Vec<u8>> = vec![
        b"live-1".to_vec(),
        b"ghost-99".to_vec(),
        b"live-2".to_vec(),
        b"live-1".to_vec(), // second removal of the same key
        b"live-1".to_vec(), // now absent: must fail like scalar
    ];
    let mixed_views: Vec<&[u8]> = mixed.iter().map(|g| g.as_slice()).collect();
    let mut scalar_f = f.clone();
    let scalar_ok: Vec<bool> = mixed_views
        .iter()
        .map(|k| scalar_f.remove_bytes_cost(k).is_ok())
        .collect();
    let (batched, _) = f.remove_batch_cost(&mixed_views);
    let batched_ok: Vec<bool> = batched.iter().map(Result::is_ok).collect();
    assert_eq!(batched_ok, scalar_ok, "{label}: batch/scalar divergence");
    assert_eq!(
        fingerprint(&f),
        fingerprint(&scalar_f),
        "{label}: mixed removal state differs from scalar replay"
    );
}

#[test]
fn mpcbf_u64_insert_rollback_is_bit_identical() {
    let f: Mpcbf<u64, Murmur3> = Mpcbf::new(tight_config(64, 1));
    assert_insert_rollback(f, |f| f.raw_words().to_vec(), "mpcbf-u64");
}

#[test]
fn mpcbf_u64_remove_rollback_is_bit_identical() {
    let cfg = MpcbfConfig::builder()
        .memory_bits(100_000)
        .expected_items(1_000)
        .hashes(3)
        .seed(2)
        .build()
        .unwrap();
    let f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
    assert_remove_rollback(f, |f| f.raw_words().to_vec(), "mpcbf-u64");
}

#[test]
fn mpcbf_u16_and_u32_words_roll_back_too() {
    // Narrow words have no raw accessor; the `words:` slice of the
    // derived Debug output is a faithful dump of every limb. The stats
    // that follow are deliberately excluded — the overflow counter
    // increments on a refused insert, which is bookkeeping, not state.
    fn limbs(debug: String) -> String {
        debug.split(", shape:").next().unwrap().to_string()
    }
    let f16: Mpcbf<u16, Murmur3> = Mpcbf::new(tight_config(16, 3));
    assert_insert_rollback(f16, |f| limbs(format!("{f:?}")), "mpcbf-u16");
    let f32: Mpcbf<u32, Murmur3> = Mpcbf::new(tight_config(32, 4));
    assert_insert_rollback(f32, |f| limbs(format!("{f:?}")), "mpcbf-u32");
}

#[test]
fn dlcbf_full_buckets_roll_back() {
    // 2 buckets × 1 cell per sub-table: a handful of distinct keys fills
    // every candidate bucket, after which inserts must fail cleanly.
    let mut f: DlCbf<Murmur3> = DlCbf::new(2, 2, 1, 12, 5);
    let mut filled = 0u32;
    while filled < 1_000 {
        let key = format!("fill-{filled}").into_bytes();
        if f.insert_bytes_cost(&key).is_err() {
            break;
        }
        filled += 1;
    }
    assert!(filled < 1_000, "dlcbf never filled");
    // Find a key every one of whose candidate buckets is full.
    let mut probe = 0u32;
    let (victim, before) = loop {
        let key = format!("victim-{probe}").into_bytes();
        let snapshot = format!("{f:?}");
        if f.insert_bytes_cost(&key).is_err() {
            break (key, snapshot);
        }
        probe += 1;
        assert!(probe < 1_000, "dlcbf found no refused key");
    };
    let batch: Vec<&[u8]> = vec![victim.as_slice(); 8];
    let (results, _) = f.insert_batch_cost(&batch);
    assert!(results.iter().all(Result::is_err));
    assert_eq!(format!("{f:?}"), before, "dlcbf failed batch left residue");
}

#[test]
fn sharded_mpcbf_batch_rollback_is_bit_identical() {
    let f: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(tight_config(64, 6), 4);
    let hot = b"hot-key".as_slice();
    let mut stored = 0u32;
    while f.insert_bytes(hot).is_ok() {
        stored += 1;
        assert!(stored < 10_000);
    }
    let before: Vec<Vec<u64>> = (0..f.shard_count()).map(|s| f.shard_raw_words(s)).collect();
    let results = f.insert_batch_bytes(&[hot; 12]);
    assert!(results.iter().all(Result::is_err));
    let after: Vec<Vec<u64>> = (0..f.shard_count()).map(|s| f.shard_raw_words(s)).collect();
    assert_eq!(after, before, "sharded failed batch left residue");
}

#[test]
fn atomic_mpcbf_batch_rollback_is_bit_identical() {
    let f: AtomicMpcbf<Murmur3> = AtomicMpcbf::new(tight_config(64, 7));
    let hot = b"hot-key".as_slice();
    let mut stored = 0u32;
    while f.insert_bytes(hot).is_ok() {
        stored += 1;
        assert!(stored < 10_000);
    }
    let before = f.raw_snapshot();
    let results = f.insert_batch_bytes(&[hot; 12]);
    assert!(results.iter().all(Result::is_err));
    assert_eq!(f.raw_snapshot(), before, "atomic failed batch left residue");
}

#[test]
fn resilient_mpcbf_never_fails_and_still_matches_scalar() {
    // The spillover wrapper turns the failing batch into spilled inserts;
    // batch and scalar replays must stay bit-identical to each other.
    let mut batch_f: ResilientMpcbf = ResilientMpcbf::new(tight_config(64, 8));
    let mut scalar_f: ResilientMpcbf = ResilientMpcbf::new(tight_config(64, 8));
    let hot = b"hot-key".as_slice();
    let keys: Vec<&[u8]> = vec![hot; 24];
    let (results, _) = batch_f.insert_batch_cost(&keys);
    assert!(
        results.iter().all(Result::is_ok),
        "spillover must absorb every overflow"
    );
    for _ in 0..24 {
        scalar_f.insert_bytes_cost(hot).unwrap();
    }
    assert_eq!(batch_f.main().raw_words(), scalar_f.main().raw_words());
    assert_eq!(batch_f.spill_occupancy(), scalar_f.spill_occupancy());
    assert_eq!(batch_f.items(), scalar_f.items());
}
