//! Bulk/sequential equivalence: the cache-bucketed streaming builder
//! must be *observationally indistinguishable* from the scalar insert
//! loop over the same key stream — bit-for-bit identical words, the
//! same admission tallies, and (for the resilient family) the same
//! lossless guarantee — across all three filter families and both
//! staging modes (deferred `g == 1` packing and push-time admission for
//! `g ≥ 2`).
//!
//! Key streams are drawn proptest-style over seed/count/shape, with
//! deliberately tight configurations so words overflow and hot
//! duplicated keys force mid-stream refusals — the hard cases for
//! deferred admission, which must reproduce the sequential decisions
//! from per-word running totals alone.

use mpcbf::concurrent::{build_parallel, ShardedBulkBuilder, ShardedMpcbf};
use mpcbf::core::{BulkBuilder, Filter, Mpcbf, MpcbfConfig, ResilientBulkBuilder, ResilientMpcbf};
use mpcbf::durability::{DurabilityOptions, DurableShardedMpcbf};
use mpcbf::hash::Murmur3;
use mpcbf::workloads::BulkKeys;
use proptest::prelude::*;

fn config(memory_bits: u64, items: u64, k: u32, g: u32, seed: u64) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(memory_bits)
        .expected_items(items)
        .hashes(k)
        .accesses(g)
        .seed(seed)
        .build()
        .unwrap()
}

/// A key stream with duplicated hot keys woven mid-stream: every
/// `hot_every`-th key repeats one of `hot` fixed keys, so words fill
/// unevenly and duplicates hit both already-admitted and already-full
/// words.
fn keys(seed: u64, n: u64, hot: u64, hot_every: u64) -> Vec<Vec<u8>> {
    let base = BulkKeys::new(seed, n).collect();
    base.into_iter()
        .enumerate()
        .map(|(i, key)| {
            let i = i as u64;
            if hot > 0 && hot_every > 0 && i.is_multiple_of(hot_every) {
                format!("hot-key-{}", i / hot_every % hot).into_bytes()
            } else {
                key.to_vec()
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// MPCBF-1 (deferred staging): bulk == sequential, words and
    /// tallies, under overflow pressure and duplicates.
    #[test]
    fn mpcbf_g1_bulk_equals_sequential(
        seed in 1u64..1000,
        n in 200u64..2_000,
        hot_every in 3u64..20,
    ) {
        let cfg = config(4096, 300, 3, 1, seed);
        let stream = keys(seed, n, 4, hot_every);

        let mut naive: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        for key in &stream {
            let _ = naive.insert_bytes(key);
        }

        let mut builder: BulkBuilder<Murmur3> = BulkBuilder::new(cfg);
        prop_assert!(builder.is_deferred());
        for key in &stream {
            builder.push(key);
        }
        let bulk = builder.finish();

        prop_assert_eq!(naive.raw_words(), bulk.raw_words());
        prop_assert_eq!(naive.items(), bulk.items());
        prop_assert_eq!(naive.overflows(), bulk.overflows());
    }

    /// MPCBF-g (g ≥ 2 forces push-time admission): same equivalence.
    #[test]
    fn mpcbf_g2_bulk_equals_sequential(
        seed in 1u64..1000,
        n in 200u64..1_500,
        hot_every in 3u64..20,
    ) {
        let cfg = config(4096, 300, 4, 2, seed);
        let stream = keys(seed, n, 4, hot_every);

        let mut naive: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        for key in &stream {
            let _ = naive.insert_bytes(key);
        }

        let mut builder: BulkBuilder<Murmur3> = BulkBuilder::new(cfg);
        prop_assert!(!builder.is_deferred());
        for key in &stream {
            builder.push(key);
        }
        let bulk = builder.finish();

        prop_assert_eq!(naive.raw_words(), bulk.raw_words());
        prop_assert_eq!(naive.items(), bulk.items());
        prop_assert_eq!(naive.overflows(), bulk.overflows());
    }

    /// The multi-threaded region finish changes nothing: parallel
    /// sweeps produce the same filter as the single-threaded drain.
    #[test]
    fn parallel_finish_equals_sequential(
        seed in 1u64..1000,
        n in 500u64..3_000,
        threads in 1usize..5,
    ) {
        let cfg = config(1 << 16, 3_000, 3, 1, seed);
        let stream = keys(seed, n, 3, 7);

        let mut naive: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        for key in &stream {
            let _ = naive.insert_bytes(key);
        }

        let mut builder: BulkBuilder<Murmur3> = BulkBuilder::new(cfg);
        for key in &stream {
            builder.push(key);
        }
        let bulk = build_parallel(builder, threads);

        prop_assert_eq!(naive.raw_words(), bulk.raw_words());
        prop_assert_eq!(naive.items(), bulk.items());
        prop_assert_eq!(naive.overflows(), bulk.overflows());
    }

    /// Sharded bulk build: per-shard words, items and overflow tallies
    /// all match a live sharded filter fed the same stream.
    #[test]
    fn sharded_bulk_equals_live_inserts(
        seed in 1u64..1000,
        n in 500u64..3_000,
        shards in 1usize..5,
        threads in 1usize..4,
    ) {
        let cfg = config(1 << 15, 600, 3, 1, seed);
        let stream = keys(seed, n, 4, 9);

        let live: ShardedMpcbf<u64, Murmur3> = ShardedMpcbf::new(cfg, shards);
        for key in &stream {
            let _ = live.insert_bytes(key);
        }

        let mut builder: ShardedBulkBuilder<Murmur3> = ShardedBulkBuilder::new(cfg, shards);
        for key in &stream {
            builder.push(key);
        }
        let bulk = builder.finish_parallel(threads);

        // `encode()` captures every shard's full word image plus the
        // admission counters, so one comparison pins the whole state.
        prop_assert_eq!(live.encode(), bulk.encode());
    }

    /// Resilient bulk build is lossless: every key of the stream —
    /// including ones the main filter refused into the spill — is
    /// contained afterwards, exactly as with live inserts.
    #[test]
    fn resilient_bulk_is_lossless_and_equivalent(
        seed in 1u64..1000,
        n in 400u64..1_500,
        hot_every in 3u64..15,
    ) {
        let cfg = config(2048, 400, 3, 1, seed);
        let stream = keys(seed, n, 3, hot_every);

        let mut live: ResilientMpcbf<Murmur3> = ResilientMpcbf::new(cfg);
        for key in &stream {
            live.insert_bytes(key).unwrap();
        }

        let mut builder: ResilientBulkBuilder<Murmur3> = ResilientBulkBuilder::new(cfg);
        for key in &stream {
            builder.push(key);
        }
        let bulk = builder.finish();

        for key in &stream {
            prop_assert!(bulk.contains_bytes(key), "bulk build lost a key");
        }
        prop_assert_eq!(live.main().raw_words(), bulk.main().raw_words());
        prop_assert_eq!(live.items(), bulk.items());
        prop_assert_eq!(live.spill_keys(), bulk.spill_keys());
    }
}

/// The durability fast path: a bulk-built sharded filter materialised
/// via [`DurableShardedMpcbf::bootstrap`] cold-starts from the snapshot
/// alone — zero WAL records replayed — and serves the exact state the
/// builder produced.
#[test]
fn bootstrap_cold_start_replays_nothing() {
    let dir = std::env::temp_dir().join(format!("bulk-bootstrap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = config(1 << 16, 3_000, 3, 1, 7);
    let stream = keys(7, 2_500, 3, 11);
    let mut builder: ShardedBulkBuilder<Murmur3> = ShardedBulkBuilder::new(cfg, 4);
    for key in &stream {
        builder.push(key);
    }
    let built = builder.finish_parallel(2);
    let image = built.encode();

    DurableShardedMpcbf::<Murmur3>::bootstrap(&built, DurabilityOptions::new(&dir)).unwrap();

    let (recovered, report) =
        DurableShardedMpcbf::<Murmur3>::open_or_recover(DurabilityOptions::new(&dir), || {
            ShardedMpcbf::new(cfg, 4)
        })
        .unwrap();

    assert_eq!(report.records_replayed, 0, "cold start must not replay WAL");
    assert_eq!(report.snapshots_corrupt, 0);
    assert_eq!(report.snapshot_seq, Some(0));
    assert!(report.scrub_clean);
    assert_eq!(recovered.inner().encode(), image);
    // Query fidelity: the recovered filter answers exactly as the one
    // the builder produced (refused keys stay refused, admitted stay
    // admitted).
    for key in &stream {
        assert_eq!(
            recovered.inner().contains_bytes(key),
            built.contains_bytes(key)
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// The synthetic key stream the CLI and benches share is deterministic
/// and chunking-invariant: any chunk size walks the same keys.
#[test]
fn bulk_keys_deterministic_across_chunkings() {
    let whole = BulkKeys::new(42, 10_000).collect();
    for chunk in [1usize, 7, 1024, 8192] {
        let mut walked = Vec::new();
        BulkKeys::new(42, 10_000).for_each_chunk(chunk, |keys| {
            walked.extend(keys.iter().copied());
        });
        assert_eq!(walked, whole, "chunk size {chunk} changed the stream");
    }
}
