//! Cross-filter property tests: every counting filter in the workspace is
//! driven with arbitrary insert/remove/query scripts against a multiset
//! oracle, checking the Bloom contract — **no false negatives, ever** —
//! plus clean rejection of invalid deletes.

use mpcbf::core::{Cbf, CountingFilter, Filter, Mpcbf, MpcbfConfig, Pcbf};
use mpcbf::hash::Murmur3;
use mpcbf::variants::{DlCbf, ViCbf};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u16),
    Remove(u16),
    Query(u16),
}

fn scripts() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u16..300).prop_map(Op::Insert),
            (0u16..300).prop_map(Op::Remove),
            (0u16..600).prop_map(Op::Query),
        ],
        0..250,
    )
}

/// Drives one filter through a script against a multiset oracle.
///
/// The Bloom deletion contract only covers deleting elements that were
/// actually inserted. A delete of an *absent* key may — with
/// false-positive probability — pass the presence check and decrement
/// counters belonging to other elements; after that the no-false-negative
/// guarantee is void (this is the classic CBF hazard, and exactly why all
/// our filters pre-check presence). The driver therefore marks the run
/// `tainted` when an absent-key delete slips through, and stops asserting
/// the guarantee from that point on (while still checking the structure
/// doesn't panic or corrupt).
fn drive<F: CountingFilter>(filter: &mut F, script: &[Op]) {
    let mut oracle: HashMap<u16, u32> = HashMap::new();
    let mut tainted = false;
    for op in script {
        match *op {
            Op::Insert(key) => {
                if filter.insert(&u64::from(key)).is_ok() {
                    *oracle.entry(key).or_insert(0) += 1;
                }
            }
            Op::Remove(key) => {
                let present = oracle.get(&key).copied().unwrap_or(0) > 0;
                match filter.remove(&u64::from(key)) {
                    Ok(()) => {
                        if present {
                            *oracle.get_mut(&key).unwrap() -= 1;
                        } else {
                            // False-positive deletion: contract void.
                            tainted = true;
                        }
                    }
                    Err(_) => {
                        // Refusal is always allowed; nothing changed,
                        // which the sweep below verifies.
                    }
                }
            }
            Op::Query(key) => {
                let present = oracle.get(&key).copied().unwrap_or(0) > 0;
                let claimed = filter.contains(&u64::from(key));
                if present && !tainted {
                    assert!(claimed, "false negative for live key {key}");
                }
            }
        }
        // Sweep: every live oracle key must be claimed present.
        if !tainted {
            for (&key, &count) in &oracle {
                if count > 0 {
                    assert!(
                        filter.contains(&u64::from(key)),
                        "false negative for {key} (count {count}) after {op:?}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cbf_never_false_negative(script in scripts()) {
        let mut f = Cbf::<Murmur3>::new(8192, 3, 11);
        drive(&mut f, &script);
    }

    #[test]
    fn pcbf1_never_false_negative(script in scripts()) {
        let mut f = Pcbf::<Murmur3>::new(512, 64, 3, 1, 11);
        drive(&mut f, &script);
    }

    #[test]
    fn pcbf2_never_false_negative(script in scripts()) {
        let mut f = Pcbf::<Murmur3>::new(512, 64, 3, 2, 11);
        drive(&mut f, &script);
    }

    #[test]
    fn mpcbf1_never_false_negative(script in scripts()) {
        let cfg = MpcbfConfig::builder()
            .memory_bits(64 * 512)
            .expected_items(300)
            .hashes(3)
            .seed(11)
            .build()
            .unwrap();
        let mut f: Mpcbf<u64> = Mpcbf::new(cfg);
        drive(&mut f, &script);
    }

    #[test]
    fn mpcbf2_never_false_negative(script in scripts()) {
        let cfg = MpcbfConfig::builder()
            .memory_bits(64 * 512)
            .expected_items(300)
            .hashes(3)
            .accesses(2)
            .seed(11)
            .build()
            .unwrap();
        let mut f: Mpcbf<u64> = Mpcbf::new(cfg);
        drive(&mut f, &script);
    }

    #[test]
    fn dlcbf_never_false_negative(script in scripts()) {
        let mut f = DlCbf::<Murmur3>::new(4, 64, 8, 12, 11);
        drive(&mut f, &script);
    }

    #[test]
    fn vicbf_never_false_negative(script in scripts()) {
        let mut f = ViCbf::<Murmur3>::new(4096, 3, 4, 11);
        drive(&mut f, &script);
    }

    #[test]
    fn mpcbf_drains_to_empty(keys in prop::collection::vec(0u64..10_000, 0..200)) {
        let cfg = MpcbfConfig::builder()
            .memory_bits(64 * 1024)
            .expected_items(500)
            .hashes(3)
            .seed(7)
            .build()
            .unwrap();
        let mut f: Mpcbf<u64> = Mpcbf::new(cfg);
        let mut stored = Vec::new();
        for k in &keys {
            if f.insert(k).is_ok() {
                stored.push(*k);
            }
        }
        for k in &stored {
            f.remove(k).unwrap();
        }
        prop_assert!(f.word_loads().iter().all(|&c| c == 0), "residual counters after drain");
    }
}
