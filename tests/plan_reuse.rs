//! Plan-buffer reuse equivalence: holding one [`PlanBuffer`] (or
//! [`ShardBatch`]) across many batches must be observationally identical
//! to planning into a fresh buffer every batch — same per-key verdicts,
//! same [`OpCost`] totals, bit-identical filter state.
//!
//! This is the contract that makes the allocation-free fused pipeline
//! safe: a buffer is pure scratch, so no batch may ever observe residue
//! from a previous batch (stale group bookkeeping, a longer previous
//! batch's tail, a flat plan following a partitioned one, ...).
//!
//! The batch schedules deliberately alternate batch sizes (long, short,
//! long) and mix inserts/queries/removes so reuse crosses every
//! size-transition direction, and a deliberately tiny MPCBF forces
//! mid-batch `WordOverflow` rollbacks through a reused buffer.

use mpcbf::concurrent::{AtomicMpcbf, ShardBatch, ShardedMpcbf};
use mpcbf::core::{Cbf, CountingFilter, Filter, Mpcbf, MpcbfConfig, OpCost, PlanBuffer};
use mpcbf::hash::Murmur3;
use mpcbf::variants::Rcbf;
use proptest::prelude::*;
use std::fmt::Debug;

fn to_bytes(keys: &[u16]) -> Vec<Vec<u8>> {
    keys.iter().map(|k| k.to_le_bytes().to_vec()).collect()
}

fn views(keys: &[Vec<u8>]) -> Vec<&[u8]> {
    keys.iter().map(|k| k.as_slice()).collect()
}

/// Splits one key list into batches of alternating lengths so a reused
/// buffer sees shrink *and* grow transitions (the residue-prone cases).
fn batches<'a>(keys: &'a [&'a [u8]]) -> Vec<&'a [&'a [u8]]> {
    let sizes = [7usize, 1, 13, 2, 31, 5];
    let mut out = Vec::new();
    let mut rest = keys;
    let mut i = 0;
    while !rest.is_empty() {
        let take = sizes[i % sizes.len()].min(rest.len());
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
        i += 1;
    }
    out
}

/// One mixed op schedule: per batch, insert it, query it, then remove it.
/// Runs the schedule twice over clones of `proto` — once with a single
/// reused buffer, once with a fresh buffer per call — and asserts every
/// observable matches.
fn check_trait_filter<F: CountingFilter + Clone + Debug>(name: &str, proto: F, keys: &[Vec<u8>]) {
    let key_views = views(keys);
    let mut reused_f = proto.clone();
    let mut fresh_f = proto;
    let mut reused = PlanBuffer::new();

    for (b, chunk) in batches(&key_views).into_iter().enumerate() {
        let ri = reused_f.insert_batch_with(chunk, &mut reused);
        let fi = fresh_f.insert_batch_with(chunk, &mut PlanBuffer::new());
        assert_eq!(ri, fi, "{name}: insert batch {b} diverged under reuse");

        let rq = reused_f.contains_batch_with(chunk, &mut reused);
        let fq = fresh_f.contains_batch_with(chunk, &mut PlanBuffer::new());
        assert_eq!(rq, fq, "{name}: query batch {b} diverged under reuse");

        let rr = reused_f.remove_batch_with(chunk, &mut reused);
        let fr = fresh_f.remove_batch_with(chunk, &mut PlanBuffer::new());
        assert_eq!(rr, fr, "{name}: remove batch {b} diverged under reuse");

        assert_eq!(
            format!("{reused_f:?}"),
            format!("{fresh_f:?}"),
            "{name}: state diverged after batch {b}"
        );
    }
}

/// Same schedule against the sharded filter's `*_batch_bytes_with` API,
/// reusing one [`ShardBatch`] scratch vs a fresh scratch per call.
fn check_sharded(proto: impl Fn() -> ShardedMpcbf<u64, Murmur3>, keys: &[Vec<u8>]) {
    let key_views = views(keys);
    let reused_f = proto();
    let fresh_f = proto();
    let mut reused = ShardBatch::new();

    for (b, chunk) in batches(&key_views).into_iter().enumerate() {
        let ri = reused_f.insert_batch_bytes_with(chunk, &mut reused);
        let fi = fresh_f.insert_batch_bytes_with(chunk, &mut ShardBatch::new());
        assert_eq!(ri, fi, "sharded: insert batch {b} diverged under reuse");

        let rq = reused_f.contains_batch_bytes_with(chunk, &mut reused);
        let fq = fresh_f.contains_batch_bytes_with(chunk, &mut ShardBatch::new());
        assert_eq!(rq, fq, "sharded: query batch {b} diverged under reuse");

        let rr = reused_f.remove_batch_bytes_with(chunk, &mut reused);
        let fr = fresh_f.remove_batch_bytes_with(chunk, &mut ShardBatch::new());
        assert_eq!(rr, fr, "sharded: remove batch {b} diverged under reuse");
    }
    // Final state check: both filters must answer an independent probe
    // sweep identically (the sharded filter has no Debug state dump).
    let rq = reused_f.contains_batch_bytes_with(&key_views, &mut reused);
    let fq = fresh_f.contains_batch_bytes(&key_views);
    assert_eq!(rq, fq, "sharded: final membership diverged under reuse");
}

/// Same schedule against the lock-free filter, reusing one [`PlanBuffer`].
fn check_atomic(proto: impl Fn() -> AtomicMpcbf<Murmur3>, keys: &[Vec<u8>]) {
    let key_views = views(keys);
    let reused_f = proto();
    let fresh_f = proto();
    let mut reused = PlanBuffer::new();

    for (b, chunk) in batches(&key_views).into_iter().enumerate() {
        let ri = reused_f.insert_batch_bytes_with(chunk, &mut reused);
        let fi = fresh_f.insert_batch_bytes_with(chunk, &mut PlanBuffer::new());
        assert_eq!(ri, fi, "atomic: insert batch {b} diverged under reuse");

        let rq = reused_f.contains_batch_bytes_with(chunk, &mut reused);
        let fq = fresh_f.contains_batch_bytes_with(chunk, &mut PlanBuffer::new());
        assert_eq!(rq, fq, "atomic: query batch {b} diverged under reuse");

        let rr = reused_f.remove_batch_bytes_with(chunk, &mut reused);
        let fr = fresh_f.remove_batch_bytes_with(chunk, &mut PlanBuffer::new());
        assert_eq!(rr, fr, "atomic: remove batch {b} diverged under reuse");
    }
    let rq = reused_f.contains_batch_bytes_with(&key_views, &mut reused);
    let fq = fresh_f.contains_batch_bytes(&key_views);
    assert_eq!(rq, fq, "atomic: final membership diverged under reuse");
}

fn mpcbf(g: u32) -> Mpcbf<u64, Murmur3> {
    Mpcbf::new(config(50_000, 500, g))
}

fn config(memory_bits: u64, items: u64, g: u32) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(memory_bits)
        .expected_items(items)
        .hashes(3)
        .accesses(g)
        .seed(11)
        .build()
        .unwrap()
}

/// A deliberately tiny MPCBF so insert batches overflow words mid-batch:
/// reuse must preserve the rollback walk (per-key `Err` positions and the
/// all-or-nothing state restore) exactly.
fn tiny_mpcbf() -> Mpcbf<u64, Murmur3> {
    Mpcbf::new(
        MpcbfConfig::builder()
            .memory_bits(256)
            .expected_items(1)
            .n_max(2)
            .hashes(3)
            .seed(5)
            .build()
            .unwrap(),
    )
}

fn key_list() -> impl Strategy<Value = Vec<u16>> {
    // Tiny key space ⇒ duplicates across and within batches are common.
    prop::collection::vec(0u16..64, 0..80)
}

proptest! {
    #[test]
    fn core_filters_reuse_equals_fresh(keys in key_list()) {
        let k = to_bytes(&keys);
        check_trait_filter("MPCBF-1", mpcbf(1), &k);
        check_trait_filter("MPCBF-2", mpcbf(2), &k);
        check_trait_filter("CBF", Cbf::<Murmur3>::new(2_048, 3, 7), &k);
        // RCBF has no buffer-aware override: the trait default must ignore
        // the buffer and still be answer-identical under reuse.
        check_trait_filter("RCBF", Rcbf::<Murmur3>::new(512, 12, 2, 7), &k);
    }

    #[test]
    fn overflowing_batches_reuse_equals_fresh(keys in key_list()) {
        // The tiny config overflows constantly, so reused buffers carry
        // rollback-era residue into subsequent batches — which must not
        // be observable.
        check_trait_filter("MPCBF-tiny", tiny_mpcbf(), &to_bytes(&keys));
    }

    #[test]
    fn concurrent_filters_reuse_equals_fresh(keys in key_list()) {
        let k = to_bytes(&keys);
        check_sharded(|| ShardedMpcbf::new(config(50_000, 500, 1), 4), &k);
        check_atomic(|| AtomicMpcbf::new(config(50_000, 500, 1)), &k);
    }
}

/// A reused buffer must also equal the plain (buffer-less) entry points,
/// which allocate a fresh buffer internally.
#[test]
fn reuse_equals_bufferless_entry_points() {
    let keys = to_bytes(&(0..40u16).collect::<Vec<_>>());
    let key_views = views(&keys);

    let mut with_f = mpcbf(1);
    let mut plain_f = mpcbf(1);
    let mut plans = PlanBuffer::new();
    for chunk in batches(&key_views) {
        assert_eq!(
            with_f.insert_batch_with(chunk, &mut plans),
            plain_f.insert_batch_cost(chunk),
        );
        assert_eq!(
            with_f.contains_batch_with(chunk, &mut plans),
            plain_f.contains_batch_cost(chunk),
        );
    }
    assert_eq!(format!("{with_f:?}"), format!("{plain_f:?}"));
}

/// Costs must be byte-for-byte stable under reuse even when every insert
/// in a batch fails (rollback leaves the filter untouched and the failed
/// ops contribute no cost).
#[test]
fn rollback_only_batches_cost_nothing_under_reuse() {
    let mut f = tiny_mpcbf();
    let mut plans = PlanBuffer::new();
    let keys = to_bytes(&(0..24u16).collect::<Vec<_>>());
    let key_views = views(&keys);

    // Saturate until an entire batch fails.
    let mut saturated = false;
    for _ in 0..16 {
        let (results, _) = f.insert_batch_with(&key_views, &mut plans);
        if results.iter().all(Result::is_err) {
            saturated = true;
            break;
        }
    }
    assert!(saturated, "tiny filter never saturated");

    // Compare only the counter words: the `overflows` telemetry counter
    // legitimately keeps counting failed attempts.
    let words_of = |f: &Mpcbf<u64, Murmur3>| {
        let s = format!("{f:?}");
        s.split(", shape").next().map(str::to_owned).unwrap()
    };
    let before = words_of(&f);
    let (results, cost) = f.insert_batch_with(&key_views, &mut plans);
    assert!(results.iter().all(Result::is_err));
    assert_eq!(cost, OpCost::zero(), "failed inserts must cost nothing");
    assert_eq!(words_of(&f), before, "rollback must restore the words");
}
