//! End-to-end §V pipeline: generate patent data, build each filter from
//! the small side, run the reduce-side join — the result must be
//! identical for every filter (no false negatives ⇒ no lost matches),
//! and the Table IV orderings must hold.

use mpcbf::core::{Cbf, Filter, Mpcbf, MpcbfConfig};
use mpcbf::hash::Murmur3;
use mpcbf::mapreduce::join::KeyFilter;
use mpcbf::mapreduce::{reduce_side_join, JoinConfig, JoinStats};
use mpcbf::workloads::patents::{PatentDataset, PatentSpec};

#[allow(clippy::type_complexity)]
fn data() -> (Vec<(u32, u16)>, Vec<(u32, u32)>) {
    let spec = PatentSpec::default().scaled_down(64); // ~258k citations
    let d = PatentDataset::generate(&spec);
    (
        d.patents.iter().map(|p| (p.id, p.year)).collect(),
        d.citations.iter().map(|c| (c.cited, c.citing)).collect(),
    )
}

/// Builds an MPCBF sized so every key insert succeeds, doubling memory on
/// refusal — the realistic sizing loop a deployment would use, since a
/// refused key would silently drop its join matches.
fn mpcbf_for_keys(left: &[(u32, u16)], g: u32, mut big_m: u64, seed: u64) -> Mpcbf<u64> {
    loop {
        let cfg = MpcbfConfig::builder()
            .memory_bits(big_m)
            .expected_items(left.len() as u64)
            .hashes(3)
            .accesses(g)
            .seed(seed)
            .build()
            .unwrap();
        let mut f: Mpcbf<u64> = Mpcbf::new(cfg);
        if left.iter().all(|(k, _)| f.insert(k).is_ok()) {
            return f;
        }
        big_m *= 2;
    }
}

fn run(
    left: &[(u32, u16)],
    right: &[(u32, u32)],
    filter: Option<&dyn KeyFilter>,
) -> (usize, JoinStats) {
    let (rows, stats) = reduce_side_join(
        &JoinConfig::default(),
        left.to_vec(),
        right.to_vec(),
        filter,
    );
    (rows.len(), stats)
}

#[test]
fn all_filters_produce_the_same_join() {
    let (left, right) = data();
    let n_keys = left.len() as u64;
    let big_m = 24 * n_keys;

    let mut cbf = Cbf::<Murmur3>::with_memory(big_m, 3, 5);
    for (k, _) in &left {
        cbf.insert(k).unwrap();
    }
    let mp1 = mpcbf_for_keys(&left, 1, big_m, 5);

    let (rows_plain, plain) = run(&left, &right, None);
    let (rows_cbf, s_cbf) = run(&left, &right, Some(&cbf));
    let (rows_mp1, s_mp1) = run(&left, &right, Some(&mp1));

    assert_eq!(rows_plain, rows_cbf, "CBF pushdown changed the join");
    assert_eq!(rows_plain, rows_mp1, "MPCBF pushdown changed the join");

    // Both filters must actually reduce the shuffle.
    assert!(s_cbf.job.map_output_records < plain.job.map_output_records);
    assert!(s_mp1.job.map_output_records < plain.job.map_output_records);
}

#[test]
fn mpcbf_filters_better_than_cbf_table4() {
    let (left, right) = data();
    let n_keys = left.len() as u64;
    // 24 bits/key: tight enough that CBF visibly leaks, roomy enough that
    // MPCBF's per-word loads stay in the regime the paper evaluates.
    let big_m = 24 * n_keys;

    let mut cbf = Cbf::<Murmur3>::with_memory(big_m, 3, 6);
    for (k, _) in &left {
        cbf.insert(k).unwrap();
    }
    let mp1 = mpcbf_for_keys(&left, 1, big_m, 6);
    let mp2 = mpcbf_for_keys(&left, 2, big_m, 6);

    let (_, s_cbf) = run(&left, &right, Some(&cbf));
    let (_, s_mp1) = run(&left, &right, Some(&mp1));
    let (_, s_mp2) = run(&left, &right, Some(&mp2));

    // Table IV ordering: CBF > MPCBF-1 > MPCBF-2 in join FPR, and the
    // map-output counts follow.
    assert!(
        s_cbf.join_fpr() > s_mp1.join_fpr(),
        "CBF {} vs MPCBF-1 {}",
        s_cbf.join_fpr(),
        s_mp1.join_fpr()
    );
    assert!(
        s_mp1.join_fpr() > s_mp2.join_fpr(),
        "MPCBF-1 {} vs MPCBF-2 {}",
        s_mp1.join_fpr(),
        s_mp2.join_fpr()
    );
    assert!(s_cbf.job.map_output_records > s_mp1.job.map_output_records);
    assert!(s_mp1.job.map_output_records > s_mp2.job.map_output_records);
}

#[test]
fn join_fpr_accounting_is_internally_consistent() {
    let (left, right) = data();
    let n_keys = left.len() as u64;
    let mut cbf = Cbf::<Murmur3>::with_memory(12 * n_keys, 3, 7);
    for (k, _) in &left {
        cbf.insert(k).unwrap();
    }
    let (_, s) = run(&left, &right, Some(&cbf));
    assert_eq!(
        s.filtered_out + s.false_positives,
        s.matchless_records,
        "matchless records must split into filtered + leaked"
    );
    assert!(s.join_fpr() >= 0.0 && s.join_fpr() <= 1.0);
}
