//! Pins the experimental protocol itself: hand-computed miniature
//! workloads through the public APIs, so a regression in the harness
//! (ground-truth tracking, churn ordering, FPR accounting, key encoding)
//! cannot silently skew every figure.

use mpcbf::core::{Cbf, CountingFilter, Filter};
use mpcbf::hash::{Key, Murmur3};
use mpcbf::workloads::churn::{ChurnPeriod, ChurnPlan};
use mpcbf::workloads::flowtrace::{FlowTrace, FlowTraceSpec};
use mpcbf::workloads::synthetic::{SyntheticSpec, SyntheticWorkload};
use std::collections::HashSet;

#[test]
fn synthetic_spec_defaults_are_the_papers() {
    let s = SyntheticSpec::default();
    assert_eq!(s.test_set, 100_000);
    assert_eq!(s.queries, 1_000_000);
    assert_eq!(s.member_ratio, 0.8);
    assert_eq!(s.churn_per_period, 20_000);
}

#[test]
fn flow_spec_defaults_are_the_papers() {
    let s = FlowTraceSpec::default();
    assert_eq!(s.total_records, 5_585_633);
    assert_eq!(s.unique_flows, 292_363);
    assert_eq!(s.test_set, 200_000);
    assert_eq!(s.churn_per_period, 40_000);
}

#[test]
fn churn_keeps_population_constant_through_a_real_filter() {
    // The §IV.A invariant: "maintaining a constant number of strings in
    // the filters" — verified against a live CBF's item count.
    let spec = SyntheticSpec {
        test_set: 2_000,
        queries: 10,
        churn_per_period: 400,
        periods: 3,
        ..SyntheticSpec::default()
    };
    let w = SyntheticWorkload::generate(&spec);
    let mut f = Cbf::<Murmur3>::new(50_000, 3, 1);
    for k in &w.test_set {
        f.insert(k).unwrap();
    }
    assert_eq!(f.items(), 2_000);
    for p in &w.churn.periods {
        for k in &p.deletes {
            f.remove(k).unwrap();
        }
        for k in &p.inserts {
            f.insert(k).unwrap();
        }
        assert_eq!(f.items(), 2_000, "population drifted");
    }
}

#[test]
fn fpr_accounting_matches_a_hand_computed_case() {
    // 4 members + 4 strangers; a perfect filter must report fpr = 0 with
    // 4 negatives — the runner's denominators are exactly determined.
    let mut f = Cbf::<Murmur3>::new(1 << 16, 4, 3);
    let members: Vec<u64> = vec![1, 2, 3, 4];
    let strangers: Vec<u64> = vec![100, 200, 300, 400];
    for m in &members {
        Filter::insert(&mut f, m).unwrap();
    }
    let mut negatives = 0;
    let mut false_positives = 0;
    for q in members.iter().chain(&strangers) {
        let hit = f.contains(q);
        if !members.contains(q) {
            negatives += 1;
            false_positives += u32::from(hit);
        } else {
            assert!(hit);
        }
    }
    assert_eq!(negatives, 4);
    // At 65k counters with 4 items, a false positive would be ≈ 1e-13.
    assert_eq!(false_positives, 0);
}

#[test]
fn trace_from_records_respects_arrival_order_for_queries() {
    let records = vec![(1u32, 2u32), (3, 4), (1, 2), (5, 6), (1, 2)];
    let t = FlowTrace::from_records(records.clone(), 2, 1, 1, 7);
    assert_eq!(t.records, records, "query stream must be the raw arrivals");
    assert_eq!(t.flows.len(), 3);
}

#[test]
fn churn_plan_is_exactly_replayable() {
    // Replaying a plan twice against two filters gives identical states.
    let plan = ChurnPlan {
        periods: vec![
            ChurnPeriod {
                deletes: vec![1u64, 2],
                inserts: vec![10, 11],
            },
            ChurnPeriod {
                deletes: vec![10],
                inserts: vec![20],
            },
        ],
    };
    let run = |seed: u64| {
        let mut f = Cbf::<Murmur3>::new(4_096, 3, seed);
        for k in [1u64, 2, 3] {
            f.insert(&k).unwrap();
        }
        for p in &plan.periods {
            for k in &p.deletes {
                f.remove(k).unwrap();
            }
            for k in &p.inserts {
                f.insert(k).unwrap();
            }
        }
        (0..4_096).map(|i| f.counter(i)).collect::<Vec<_>>()
    };
    assert_eq!(run(9), run(9));
    // Live set after the plan: {3, 11, 20}.
    let mut f = Cbf::<Murmur3>::new(4_096, 3, 9);
    for k in [1u64, 2, 3] {
        f.insert(&k).unwrap();
    }
    for p in &plan.periods {
        for k in &p.deletes {
            f.remove(k).unwrap();
        }
        for k in &p.inserts {
            f.insert(k).unwrap();
        }
    }
    for live in [3u64, 11, 20] {
        assert!(f.contains(&live));
    }
    assert_eq!(f.items(), 3);
}

#[test]
fn key_encodings_are_stable_across_reruns() {
    // The workloads hand [u8; 5] and (u32, u32) keys to the filters; their
    // byte encodings are part of the reproducibility contract.
    let s: [u8; 5] = *b"AbCdE";
    assert_eq!(s.key_bytes().as_slice(), b"AbCdE");
    let f = (0x01020304u32, 0x05060708u32);
    assert_eq!(
        f.key_bytes().as_slice(),
        &[4, 3, 2, 1, 8, 7, 6, 5],
        "flow keys are little-endian (src, dst)"
    );
}

#[test]
fn query_membership_split_is_deterministic() {
    let spec = SyntheticSpec::default().scaled_down(500);
    let a = SyntheticWorkload::generate(&spec);
    let b = SyntheticWorkload::generate(&spec);
    assert_eq!(a.is_member, b.is_member);
    let members: HashSet<_> = a.test_set.iter().collect();
    for (q, &m) in a.queries.iter().zip(&a.is_member) {
        assert_eq!(members.contains(q), m);
    }
}
