//! Every hash family must drive every filter correctly — the families are
//! interchangeable type parameters, so a regression in one digest breaks
//! no-false-negatives here rather than silently skewing FPR figures.

use mpcbf::core::{Cbf, CountingFilter, Filter, Mpcbf, MpcbfConfig};
use mpcbf::hash::{Fnv, Hasher128, Murmur3, SipHash, XxHash};

fn roundtrip_mpcbf<H: Hasher128>() {
    let cfg = MpcbfConfig::builder()
        .memory_bits(400_000)
        .expected_items(3_000)
        .hashes(3)
        // Eq. (11) leaves ≈1 expected word at capacity, so with four hash
        // families a refused insert is near-certain somewhere; this test
        // unwraps every insert (it checks digest interchangeability, not
        // the sizing margin), so give the words deterministic headroom.
        .n_max(8)
        .seed(99)
        .build()
        .unwrap();
    let mut f: Mpcbf<u64, H> = Mpcbf::new(cfg);
    for i in 0..3_000u64 {
        f.insert(&i).unwrap();
    }
    for i in 0..3_000u64 {
        assert!(f.contains(&i), "false negative {i}");
    }
    for i in 0..1_500u64 {
        f.remove(&i).unwrap();
    }
    for i in 1_500..3_000u64 {
        assert!(f.contains(&i), "lost {i} after churn");
    }
}

fn roundtrip_cbf<H: Hasher128>() {
    let mut f: Cbf<H> = Cbf::with_memory(200_000, 3, 7);
    for i in 0..2_000u64 {
        f.insert(&i).unwrap();
    }
    for i in 0..2_000u64 {
        assert!(f.contains(&i));
    }
}

#[test]
fn murmur3_drives_all_filters() {
    roundtrip_mpcbf::<Murmur3>();
    roundtrip_cbf::<Murmur3>();
}

#[test]
fn xxhash_drives_all_filters() {
    roundtrip_mpcbf::<XxHash>();
    roundtrip_cbf::<XxHash>();
}

#[test]
fn fnv_drives_all_filters() {
    roundtrip_mpcbf::<Fnv>();
    roundtrip_cbf::<Fnv>();
}

#[test]
fn siphash_drives_all_filters() {
    roundtrip_mpcbf::<SipHash>();
    roundtrip_cbf::<SipHash>();
}

#[test]
fn families_give_statistically_similar_fpr() {
    // Same config, different digests: the measured FPRs must agree within
    // binomial noise — a family whose FPR is way off has a bias bug.
    fn fpr<H: Hasher128>() -> f64 {
        let cfg = MpcbfConfig::builder()
            .memory_bits(400_000)
            .expected_items(10_000)
            .hashes(3)
            .seed(5)
            .build()
            .unwrap();
        let mut f: Mpcbf<u64, H> = Mpcbf::new(cfg);
        for i in 0..10_000u64 {
            let _ = f.insert(&i);
        }
        let trials = 200_000u64;
        let fp = (1_000_000..1_000_000 + trials)
            .filter(|i: &u64| f.contains(i))
            .count();
        fp as f64 / trials as f64
    }
    let rates = [
        fpr::<Murmur3>(),
        fpr::<XxHash>(),
        fpr::<Fnv>(),
        fpr::<SipHash>(),
    ];
    let mean: f64 = rates.iter().sum::<f64>() / rates.len() as f64;
    for (i, r) in rates.iter().enumerate() {
        assert!(
            (r - mean).abs() < 0.5 * mean + 5e-4,
            "family {i}: rate {r} vs mean {mean} — biased digest?"
        );
    }
}

#[test]
fn seeds_give_independent_filters() {
    // Two filters with different seeds must not share false positives
    // (the cascading-filters trick depends on this independence).
    let build = |seed: u64| {
        let cfg = MpcbfConfig::builder()
            .memory_bits(100_000)
            .expected_items(5_000)
            .hashes(3)
            .seed(seed)
            .build()
            .unwrap();
        let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        for i in 0..5_000u64 {
            let _ = f.insert(&i);
        }
        f
    };
    let (a, b) = (build(1), build(2));
    let trials = 100_000u64;
    let mut fp_a = 0u64;
    let mut fp_both = 0u64;
    for i in 1_000_000..1_000_000 + trials {
        let ha = a.contains(&i);
        fp_a += u64::from(ha);
        fp_both += u64::from(ha && b.contains(&i));
    }
    // P[both] ≈ P[a]² ≪ P[a]; allow generous slack.
    assert!(
        fp_both * 4 < fp_a || fp_a < 20,
        "seeds correlated: both {fp_both} vs single {fp_a}"
    );
}
