//! Server protocol hardening, in the spirit of `decoder_hardening.rs`:
//! truncated frames, oversized length prefixes, arbitrary payload bytes
//! and mid-frame disconnects must never panic the server, never desync
//! a surviving connection, and never stop it serving well-formed
//! clients.
//!
//! One shared server (leaked, torn down with the test process) absorbs
//! the hostile traffic; every scenario ends by proving the server still
//! answers a fresh, well-formed client.

use mpcbf::core::MpcbfConfig;
use mpcbf::durability::{DurabilityOptions, FsyncPolicy};
use mpcbf::server::protocol::{self, MAX_FRAME};
use mpcbf::server::{Client, Server, ServerConfig};
use proptest::prelude::*;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;

fn shared_server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let mut dir = std::env::temp_dir();
        dir.push(format!("mpcbf-hardening-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            metrics_addr: None,
            durability: DurabilityOptions::new(&dir).fsync(FsyncPolicy::EveryN(256)),
            filter: MpcbfConfig::builder()
                .memory_bits(200_000)
                .expected_items(2_000)
                .hashes(3)
                .seed(3)
                .build()
                .expect("config"),
            shards: 4,
            elastic: false,
        })
        .expect("start hardening server");
        let addr = server.local_addr();
        // The server lives for the whole test process; hostile clients
        // come and go underneath it.
        std::mem::forget(server);
        addr
    })
}

/// The liveness probe every scenario ends with: a fresh connection must
/// complete a full insert/query round-trip.
fn assert_still_serving(tag: &str) {
    let mut client = Client::connect(shared_server_addr()).expect("connect after hostility");
    client
        .ping()
        .unwrap_or_else(|e| panic!("ping after {tag}: {e}"));
    let key = format!("liveness-{tag}").into_bytes();
    assert!(
        client
            .insert(&key)
            .expect("insert after hostility")
            .is_applied(),
        "insert refused after {tag}"
    );
    assert!(client.query(&key).expect("query after hostility"));
}

#[test]
fn truncated_frames_and_mid_frame_disconnects() {
    let addr = shared_server_addr();
    // Every prefix of a valid framed request, dropped mid-write.
    let payload = protocol::encode_request(&protocol::Request::Insert(b"victim".to_vec()));
    let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&payload);
    for cut in 0..framed.len() {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&framed[..cut]).expect("partial write");
        drop(stream); // disconnect inside the prefix or the frame body
    }
    assert_still_serving("mid-frame disconnects");
}

#[test]
fn oversized_length_prefix_closes_without_allocation() {
    let addr = shared_server_addr();
    for hostile_len in [MAX_FRAME + 1, u32::MAX / 2, u32::MAX] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(&hostile_len.to_le_bytes())
            .expect("hostile prefix");
        // The server must drop the stream rather than wait for (or
        // allocate) gigabytes; the next read observes EOF.
        let mut one = [0u8; 1];
        use std::io::Read;
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .expect("timeout");
        let n = stream.read(&mut one).expect("read after hostile prefix");
        assert_eq!(n, 0, "connection must close after an oversized prefix");
    }
    assert_still_serving("oversized prefixes");
}

#[test]
fn garbage_then_valid_on_the_same_connection() {
    let addr = shared_server_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    // A well-framed but meaningless payload: BAD_REQUEST, connection
    // stays open because framing never desynced.
    let garbage = [0xEEu8; 32];
    stream
        .write_all(&(garbage.len() as u32).to_le_bytes())
        .expect("prefix");
    stream.write_all(&garbage).expect("garbage payload");
    let mut reader = stream.try_clone().expect("clone");
    let response = protocol::read_frame(&mut reader)
        .expect("response after garbage")
        .expect("frame after garbage");
    assert_eq!(response.first(), Some(&protocol::STATUS_BAD_REQUEST));

    // Same socket, now a valid request: it must be served normally.
    let valid = protocol::encode_request(&protocol::Request::Query(b"whatever".to_vec()));
    protocol::write_frame(&mut stream, &valid).expect("valid frame");
    let response = protocol::read_frame(&mut reader)
        .expect("response after recovery")
        .expect("frame after recovery");
    assert_eq!(response.first(), Some(&protocol::STATUS_OK));
    assert_still_serving("garbage then valid");
}

#[test]
fn hostile_batch_headers_are_refused() {
    let addr = shared_server_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    // A batch claiming u32::MAX keys, and a key claiming u32::MAX bytes:
    // both must come back BAD_REQUEST without the allocation.
    let mut huge_count = vec![protocol::OP_INSERT_BATCH];
    huge_count.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut huge_key = vec![protocol::OP_INSERT_BATCH];
    huge_key.extend_from_slice(&1u32.to_le_bytes());
    huge_key.extend_from_slice(&u32::MAX.to_le_bytes());
    for payload in [huge_count, huge_key] {
        protocol::write_frame(&mut stream, &payload).expect("hostile batch");
        let response = protocol::read_frame(&mut stream)
            .expect("response")
            .expect("frame");
        assert_eq!(response.first(), Some(&protocol::STATUS_BAD_REQUEST));
    }
    assert_still_serving("hostile batch headers");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_framed_payloads_never_kill_the_server(
        payload in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        // The one payload excluded: a well-formed SHUTDOWN would stop
        // the shared server out from under the other scenarios.
        let mut payload = payload;
        if payload == [protocol::OP_SHUTDOWN] {
            payload[0] = 0xFF;
        }
        let addr = shared_server_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        protocol::write_frame(&mut stream, &payload).expect("framed fuzz");
        // Whatever the payload decoded to, the server must answer with a
        // well-formed frame (any status) rather than dying or stalling.
        let response = protocol::read_frame(&mut stream)
            .expect("fuzz response")
            .expect("fuzz frame");
        prop_assert!(!response.is_empty());
        drop(stream);

        let mut client = Client::connect(addr).expect("reconnect");
        client.ping().expect("ping after fuzz");
    }

    #[test]
    fn raw_unframed_bytes_never_kill_the_server(
        bytes in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        // Not even framed: raw noise (an HTTP request, a TLS hello, /dev/urandom)
        // hits the filter port and disconnects.
        let addr = shared_server_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        let _ = stream.write_all(&bytes);
        drop(stream);
        let mut client = Client::connect(addr).expect("reconnect");
        client.ping().expect("ping after noise");
    }
}
