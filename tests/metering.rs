//! Metering contract: the `_metered` batch methods must report to their
//! [`OpSink`] *exactly* the totals a scalar loop over the `_cost` calls
//! would accumulate — same op counts, same summed word accesses, same
//! summed hash bits — for every filter variant that overrides the batch
//! path. The sink only observes: results and returned cost must be
//! identical to the unmetered batch call on a clone.
//!
//! Also pins down [`WordTouches`] at its `k ≤ 64` design boundary: the
//! dedup buffer holds at most 64 distinct words (CBF's largest supported
//! `k`), saturating — never panicking — beyond it.

use mpcbf::core::metrics::WordTouches;
use mpcbf::core::{Cbf, CountingFilter, Filter, Mpcbf, MpcbfConfig, OpCost, OpKind, OpSink, Pcbf};
use mpcbf::hash::Murmur3;
use mpcbf::variants::Rcbf;
use proptest::prelude::*;
use std::cell::RefCell;
use std::fmt::Debug;

/// A single-threaded [`OpSink`] ledgering `(ops, cost)` per kind.
#[derive(Debug, Default)]
struct TallySink {
    totals: RefCell<[(u64, OpCost); 3]>,
}

impl TallySink {
    fn kind(&self, kind: OpKind) -> (u64, OpCost) {
        self.totals.borrow()[kind as usize]
    }
}

impl OpSink for TallySink {
    fn record_batch(&self, kind: OpKind, ops: u64, cost: OpCost, _nanos: u64) {
        let mut totals = self.totals.borrow_mut();
        let (o, c) = &mut totals[kind as usize];
        *o += ops;
        *c = c.add(cost);
    }
}

fn to_bytes(keys: &[u16]) -> Vec<Vec<u8>> {
    keys.iter().map(|k| k.to_le_bytes().to_vec()).collect()
}

fn views(keys: &[Vec<u8>]) -> Vec<&[u8]> {
    keys.iter().map(|k| k.as_slice()).collect()
}

/// The reference accounting: scalar `_cost` loops, failed ops free.
fn scalar_totals<F: CountingFilter>(
    f: &mut F,
    inserts: &[Vec<u8>],
    queries: &[Vec<u8>],
    removes: &[Vec<u8>],
) -> [OpCost; 3] {
    let mut insert_cost = OpCost::zero();
    for k in inserts {
        if let Ok(c) = f.insert_bytes_cost(k) {
            insert_cost = insert_cost.add(c);
        }
    }
    let query_cost = OpCost::accumulate(queries.iter().map(|k| f.contains_bytes_cost(k).1));
    let mut remove_cost = OpCost::zero();
    for k in removes {
        if let Ok(c) = f.remove_bytes_cost(k) {
            remove_cost = remove_cost.add(c);
        }
    }
    [query_cost, insert_cost, remove_cost]
}

/// Drives one variant through insert → query → remove on three clones
/// (scalar loop, unmetered batch, metered batch + sink) and checks that
/// the sink saw exactly the scalar totals while the metered results match
/// the unmetered batch call bit for bit.
fn check_metered<F: CountingFilter + Clone + Debug>(
    name: &str,
    proto: F,
    inserts: &[Vec<u8>],
    queries: &[Vec<u8>],
    removes: &[Vec<u8>],
) {
    let mut scalar = proto.clone();
    let mut batch = proto.clone();
    let mut metered = proto;
    let sink = TallySink::default();

    let expected = scalar_totals(&mut scalar, inserts, queries, removes);

    let i = views(inserts);
    let q = views(queries);
    let r = views(removes);

    let b_ins = batch.insert_batch_cost(&i);
    let m_ins = metered.insert_batch_metered(&i, &sink);
    assert_eq!(b_ins, m_ins, "{name}: metered insert diverged from batch");

    let b_q = batch.contains_batch_cost(&q);
    let m_q = metered.contains_batch_metered(&q, &sink);
    assert_eq!(b_q, m_q, "{name}: metered query diverged from batch");

    let b_rem = batch.remove_batch_cost(&r);
    let m_rem = metered.remove_batch_metered(&r, &sink);
    assert_eq!(b_rem, m_rem, "{name}: metered remove diverged from batch");

    assert_eq!(
        format!("{batch:?}"),
        format!("{metered:?}"),
        "{name}: metering changed filter state"
    );

    for (kind, expected_cost, ops) in [
        (OpKind::Query, expected[0], queries.len()),
        (OpKind::Insert, expected[1], inserts.len()),
        (OpKind::Remove, expected[2], removes.len()),
    ] {
        let (seen_ops, seen_cost) = sink.kind(kind);
        assert_eq!(
            seen_ops,
            ops as u64,
            "{name}: sink {} op count",
            kind.as_str()
        );
        assert_eq!(
            seen_cost,
            expected_cost,
            "{name}: sink {} cost != scalar-loop sum",
            kind.as_str()
        );
    }
}

fn mpcbf(g: u32) -> Mpcbf<u64, Murmur3> {
    Mpcbf::new(
        MpcbfConfig::builder()
            .memory_bits(50_000)
            .expected_items(500)
            .hashes(3)
            .accesses(g)
            .seed(11)
            .build()
            .unwrap(),
    )
}

/// Tiny enough that inserts overflow words mid-batch: refused ops must
/// still count toward the sink's op total while contributing zero cost.
fn tiny_mpcbf() -> Mpcbf<u64, Murmur3> {
    Mpcbf::new(
        MpcbfConfig::builder()
            .memory_bits(256)
            .expected_items(1)
            .n_max(2)
            .hashes(3)
            .seed(5)
            .build()
            .unwrap(),
    )
}

proptest! {
    #[test]
    fn metered_batches_report_the_scalar_sum(
        inserts in prop::collection::vec(0u16..48, 0..60),
        queries in prop::collection::vec(0u16..96, 0..60),
        removes in prop::collection::vec(0u16..48, 0..60),
    ) {
        let (i, q, r) = (to_bytes(&inserts), to_bytes(&queries), to_bytes(&removes));
        check_metered("CBF", Cbf::<Murmur3>::new(2_048, 3, 7), &i, &q, &r);
        check_metered("PCBF-2", Pcbf::<Murmur3>::new(128, 64, 3, 2, 7), &i, &q, &r);
        check_metered("MPCBF-1", mpcbf(1), &i, &q, &r);
        check_metered("MPCBF-2", mpcbf(2), &i, &q, &r);
        check_metered("MPCBF-tiny", tiny_mpcbf(), &i, &q, &r);
        check_metered("RCBF", Rcbf::<Murmur3>::new(512, 12, 2, 7), &i, &q, &r);
    }
}

#[test]
fn noop_sink_batches_still_return_real_costs() {
    // NoopSink is the zero-cost default; the returned cost must be the
    // real one even though nothing is recorded.
    let mut f = mpcbf(1);
    let keys = to_bytes(&[1, 2, 3]);
    let v = views(&keys);
    let sink = mpcbf::core::NoopSink;
    let (results, cost) = f.insert_batch_metered(&v, &sink);
    assert!(results.iter().all(Result::is_ok));
    assert_eq!(cost.word_accesses, 3); // MPCBF-1: one word per insert
    let (_, qcost) = f.contains_batch_metered(&v, &sink);
    assert_eq!(qcost.word_accesses, 3);
}

#[test]
fn word_touches_counts_exactly_64_distinct_words() {
    // k = 64 is the largest CBF configuration the tracker is sized for:
    // all 64 distinct touches must land.
    let mut t = WordTouches::new();
    for w in 0..64 {
        t.touch(w);
    }
    assert_eq!(t.count(), 64);
}

#[test]
fn word_touches_dedupes_at_the_full_boundary() {
    // 63 distinct + re-touches of each: duplicates stay free right up to
    // the boundary, and the 64th distinct word still fits afterwards.
    let mut t = WordTouches::new();
    for w in 0..63 {
        t.touch(w);
        t.touch(w);
    }
    assert_eq!(t.count(), 63);
    for w in 0..63 {
        t.touch(w);
    }
    assert_eq!(t.count(), 63);
    t.touch(63);
    assert_eq!(t.count(), 64);
}

#[test]
fn word_touches_saturates_past_64_without_forgetting() {
    // The 65th distinct word is dropped (saturation, not panic), but the
    // 64 recorded words still dedup correctly.
    let mut t = WordTouches::new();
    for w in 0..64 {
        t.touch(w);
    }
    t.touch(1_000_000);
    assert_eq!(t.count(), 64);
    for w in 0..64 {
        t.touch(w); // all already recorded: free
    }
    assert_eq!(t.count(), 64);
}
