//! Decoder hardening: `codec::decode` must never panic and must return a
//! structured [`CodecError`] on any malformed image — arbitrary bytes,
//! truncations, and single-bit flips (which the CRC-32 is mathematically
//! guaranteed to catch).

use mpcbf::core::{Cbf, Filter, Mpcbf, MpcbfConfig};
use mpcbf::hash::Murmur3;
use proptest::prelude::*;

fn mpcbf_image() -> Vec<u8> {
    let cfg = MpcbfConfig::builder()
        .memory_bits(8_192)
        .expected_items(80)
        .hashes(3)
        .seed(0xDEC0DE)
        .build()
        .unwrap();
    let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
    for i in 0..60u64 {
        let _ = f.insert(&i);
    }
    f.encode()
}

fn cbf_image() -> Vec<u8> {
    let mut f: Cbf<Murmur3> = Cbf::new(500, 3, 0xDEC0DE);
    for i in 0..200u64 {
        f.insert(&i).unwrap();
    }
    f.encode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_either_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        // Random bytes cannot carry a valid CRC except by a 2^-32
        // accident; both decoders must refuse with a structured error,
        // never panic. The error's Display must render, too.
        if let Err(e) = Mpcbf::<u64, Murmur3>::decode(&bytes) {
            prop_assert!(!e.to_string().is_empty());
        } else {
            // Astronomically unlikely; a panic-free Ok is still a pass.
        }
        if let Err(e) = Cbf::<Murmur3>::decode(&bytes) {
            prop_assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn valid_prefix_with_arbitrary_tail_never_panics(
        cut in 0usize..600,
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Grafting junk onto a truncated-but-well-formed prefix exercises
        // the header/payload length paths behind the CRC gate.
        let image = mpcbf_image();
        let cut = cut.min(image.len());
        let mut frankenstein = image[..cut].to_vec();
        frankenstein.extend_from_slice(&tail);
        let _ = Mpcbf::<u64, Murmur3>::decode(&frankenstein);
        let _ = Cbf::<Murmur3>::decode(&frankenstein);
    }

    #[test]
    fn truncation_at_any_point_is_a_structured_error(cut_hint in 0usize..600) {
        let image = mpcbf_image();
        let cut = cut_hint % image.len();
        let err = Mpcbf::<u64, Murmur3>::decode(&image[..cut]);
        prop_assert!(err.is_err(), "cut at {} decoded successfully", cut);
    }

    #[test]
    fn single_bit_flip_at_any_position_is_detected(
        byte_hint in 0usize..600,
        bit in 0u32..8,
    ) {
        let image = mpcbf_image();
        let byte = byte_hint % image.len();
        let mut corrupt = image.clone();
        corrupt[byte] ^= 1 << bit;
        prop_assert!(
            Mpcbf::<u64, Murmur3>::decode(&corrupt).is_err(),
            "flip of byte {} bit {} went undetected", byte, bit
        );
    }
}

#[test]
fn every_single_bit_flip_of_a_small_image_is_detected_exhaustively() {
    // CRC-32 detects *all* single-bit errors, so this holds for every
    // position, not just sampled ones — cheap enough to prove outright.
    type Case = (&'static str, Vec<u8>, fn(&[u8]) -> bool);
    let cases: Vec<Case> = vec![
        ("mpcbf", mpcbf_image(), |b: &[u8]| {
            Mpcbf::<u64, Murmur3>::decode(b).is_ok()
        }),
        ("cbf", cbf_image(), |b: &[u8]| {
            Cbf::<Murmur3>::decode(b).is_ok()
        }),
    ];
    for (name, image, decodes) in cases {
        assert!(decodes(&image), "{name}: pristine image must decode");
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut corrupt = image.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    !decodes(&corrupt),
                    "{name}: flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }
}

#[test]
fn decoded_errors_are_the_documented_variants() {
    use mpcbf::core::CodecError;
    assert_eq!(
        Mpcbf::<u64, Murmur3>::decode(b"nope").err(),
        Some(CodecError::Truncated)
    );
    let mut bad_magic = mpcbf_image();
    bad_magic[0] = b'X';
    assert_eq!(
        Mpcbf::<u64, Murmur3>::decode(&bad_magic).err(),
        Some(CodecError::BadMagic)
    );
    let image = mpcbf_image();
    let mut flipped = image.clone();
    let mid = image.len() / 2;
    flipped[mid] ^= 0x10;
    assert!(matches!(
        Mpcbf::<u64, Murmur3>::decode(&flipped),
        Err(CodecError::ChecksumMismatch { .. })
    ));
}
