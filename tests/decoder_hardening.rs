//! Decoder hardening: `codec::decode` must never panic and must return a
//! structured [`CodecError`] on any malformed image — arbitrary bytes,
//! truncations, and single-bit flips (which the CRC-32 is mathematically
//! guaranteed to catch). The same discipline is enforced for the
//! durability layer's WAL frames: arbitrary bytes, bit flips and torn
//! tails at every byte offset must yield structured errors (or a clean
//! truncated-prefix recovery), never a panic or fabricated state.

use mpcbf::core::{Cbf, Filter, Mpcbf, MpcbfConfig};
use mpcbf::durability::{decode_frame, encode_frame, Wal, WalOp, WalRecord};
use mpcbf::hash::Murmur3;
use proptest::prelude::*;

fn mpcbf_image() -> Vec<u8> {
    let cfg = MpcbfConfig::builder()
        .memory_bits(8_192)
        .expected_items(80)
        .hashes(3)
        .seed(0xDEC0DE)
        .build()
        .unwrap();
    let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
    for i in 0..60u64 {
        let _ = f.insert(&i);
    }
    f.encode()
}

fn cbf_image() -> Vec<u8> {
    let mut f: Cbf<Murmur3> = Cbf::new(500, 3, 0xDEC0DE);
    for i in 0..200u64 {
        f.insert(&i).unwrap();
    }
    f.encode()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_either_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        // Random bytes cannot carry a valid CRC except by a 2^-32
        // accident; both decoders must refuse with a structured error,
        // never panic. The error's Display must render, too.
        if let Err(e) = Mpcbf::<u64, Murmur3>::decode(&bytes) {
            prop_assert!(!e.to_string().is_empty());
        } else {
            // Astronomically unlikely; a panic-free Ok is still a pass.
        }
        if let Err(e) = Cbf::<Murmur3>::decode(&bytes) {
            prop_assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn valid_prefix_with_arbitrary_tail_never_panics(
        cut in 0usize..600,
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Grafting junk onto a truncated-but-well-formed prefix exercises
        // the header/payload length paths behind the CRC gate.
        let image = mpcbf_image();
        let cut = cut.min(image.len());
        let mut frankenstein = image[..cut].to_vec();
        frankenstein.extend_from_slice(&tail);
        let _ = Mpcbf::<u64, Murmur3>::decode(&frankenstein);
        let _ = Cbf::<Murmur3>::decode(&frankenstein);
    }

    #[test]
    fn truncation_at_any_point_is_a_structured_error(cut_hint in 0usize..600) {
        let image = mpcbf_image();
        let cut = cut_hint % image.len();
        let err = Mpcbf::<u64, Murmur3>::decode(&image[..cut]);
        prop_assert!(err.is_err(), "cut at {} decoded successfully", cut);
    }

    #[test]
    fn single_bit_flip_at_any_position_is_detected(
        byte_hint in 0usize..600,
        bit in 0u32..8,
    ) {
        let image = mpcbf_image();
        let byte = byte_hint % image.len();
        let mut corrupt = image.clone();
        corrupt[byte] ^= 1 << bit;
        prop_assert!(
            Mpcbf::<u64, Murmur3>::decode(&corrupt).is_err(),
            "flip of byte {} bit {} went undetected", byte, bit
        );
    }
}

/// A valid multi-record WAL stream (header + frames) plus its records.
fn wal_stream() -> (Vec<u8>, Vec<WalRecord>) {
    let records: Vec<WalRecord> = (1..=8u64)
        .map(|seq| WalRecord {
            seq,
            op: match seq % 3 {
                0 => WalOp::Remove(seq.to_le_bytes().to_vec()),
                1 => WalOp::Insert(seq.to_le_bytes().to_vec()),
                _ => WalOp::InsertBatch(vec![vec![seq as u8; 3], vec![0xAB; 5]]),
            },
        })
        .collect();
    let mut stream = mpcbf::durability::wal::SEGMENT_HEADER.to_vec();
    for record in &records {
        stream.extend_from_slice(&encode_frame(record));
    }
    (stream, records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_the_frame_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Same contract as the image decoders: random bytes must come
        // back as a structured FrameError whose Display renders.
        if let Err(e) = decode_frame(&bytes) {
            prop_assert!(!e.to_string().is_empty());
        }
    }
}

#[test]
fn every_single_bit_flip_of_a_wal_record_is_detected_exhaustively() {
    let frame = encode_frame(&WalRecord {
        seq: 99,
        op: WalOp::InsertBatch(vec![b"alice".to_vec(), b"bob".to_vec()]),
    });
    let (record, consumed) = decode_frame(&frame).expect("pristine frame decodes");
    assert_eq!(consumed, frame.len());
    assert_eq!(record.seq, 99);
    for byte in 0..frame.len() {
        for bit in 0..8 {
            let mut corrupt = frame.clone();
            corrupt[byte] ^= 1 << bit;
            assert!(
                decode_frame(&corrupt).is_err(),
                "flip of frame byte {byte} bit {bit} went undetected"
            );
        }
    }
}

#[test]
fn torn_wal_tail_at_every_byte_offset_recovers_a_strict_prefix() {
    // Cut a real WAL segment at every possible byte offset and run the
    // repairing recovery scan over it: no panic, and the records that
    // come back are exactly a leading prefix of what was written — a
    // torn tail may drop records but can never fabricate or alter one.
    let (stream, records) = wal_stream();
    // Byte offsets where a cut is a clean end-of-log, not a torn frame
    // (0 = crash before the header write, treated as an empty log).
    let mut boundaries = vec![0, mpcbf::durability::wal::SEGMENT_HEADER.len()];
    for record in &records {
        boundaries.push(boundaries.last().unwrap() + encode_frame(record).len());
    }
    let base = std::env::temp_dir().join(format!("mpcbf-torn-scan-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    for cut in 0..=stream.len() {
        let dir = base.join(format!("cut-{cut}"));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal-00000000000000000001.wal"), &stream[..cut]).unwrap();
        let (recovered, scan) = Wal::scan(&dir, "wal").expect("scan must not fail");
        assert_eq!(
            recovered,
            records[..recovered.len()],
            "cut at {cut}: recovered records must be a strict prefix"
        );
        if cut == stream.len() {
            assert_eq!(recovered.len(), records.len(), "uncut stream replays whole");
        }
        if boundaries.contains(&cut) {
            assert!(
                scan.torn.is_none(),
                "cut at {cut}: a frame-boundary cut is a clean (shorter) log"
            );
        } else {
            // Mid-header or mid-frame: the stray bytes must be reported
            // (and, below, physically amputated).
            assert!(
                scan.torn.is_some(),
                "cut at {cut}: dropped bytes must be reported as a torn tail"
            );
        }
        // The repair is physical: a second scan over the amputated file
        // is clean and returns the same prefix.
        let (again, rescan) = Wal::scan(&dir, "wal").expect("rescan");
        assert_eq!(again, recovered, "cut at {cut}: repair must be stable");
        assert!(rescan.torn.is_none(), "cut at {cut}: rescan must be clean");
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn every_single_bit_flip_of_a_small_image_is_detected_exhaustively() {
    // CRC-32 detects *all* single-bit errors, so this holds for every
    // position, not just sampled ones — cheap enough to prove outright.
    type Case = (&'static str, Vec<u8>, fn(&[u8]) -> bool);
    let cases: Vec<Case> = vec![
        ("mpcbf", mpcbf_image(), |b: &[u8]| {
            Mpcbf::<u64, Murmur3>::decode(b).is_ok()
        }),
        ("cbf", cbf_image(), |b: &[u8]| {
            Cbf::<Murmur3>::decode(b).is_ok()
        }),
    ];
    for (name, image, decodes) in cases {
        assert!(decodes(&image), "{name}: pristine image must decode");
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut corrupt = image.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    !decodes(&corrupt),
                    "{name}: flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }
}

#[test]
fn decoded_errors_are_the_documented_variants() {
    use mpcbf::core::CodecError;
    assert_eq!(
        Mpcbf::<u64, Murmur3>::decode(b"nope").err(),
        Some(CodecError::Truncated)
    );
    let mut bad_magic = mpcbf_image();
    bad_magic[0] = b'X';
    assert_eq!(
        Mpcbf::<u64, Murmur3>::decode(&bad_magic).err(),
        Some(CodecError::BadMagic)
    );
    let image = mpcbf_image();
    let mut flipped = image.clone();
    let mid = image.len() / 2;
    flipped[mid] ^= 0x10;
    assert!(matches!(
        Mpcbf::<u64, Murmur3>::decode(&flipped),
        Err(CodecError::ChecksumMismatch { .. })
    ));
}
