//! Differential proptests: the kernel-dispatched hot paths must be
//! bit-identical to the portable reference walks.
//!
//! Every `HcbfWord` mutation exists in two tiers — the dispatched hot walk
//! (carried ranks + `kernel` primitives, BMI2 where the CPU has it) and the
//! `*_reference` baseline (the naive portable `rank_range` walk). These
//! tests drive both tiers with identical scripts and demand identical raw
//! bit patterns, identical reports (count, traversal bits), and identical
//! errors — including the all-or-nothing rollback paths, where a failed
//! batch's intermediate hot-walk mutations must be undone to the exact
//! pre-batch bits.
//!
//! CI runs this suite twice: once with native feature detection and once
//! with `MPCBF_KERNEL=portable`, so the equivalence holds on whichever
//! kernel dispatch selects.

use mpcbf::bitvec::{Kernel, Word, W256, W512};
use mpcbf::core::hcbf::HcbfWord;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Inc(u32),
    Dec(u32),
}

fn ops(b1: u32, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![(0..b1).prop_map(Op::Inc), (0..b1).prop_map(Op::Dec)],
        0..len,
    )
}

/// Runs one script through the hot and reference tiers in lockstep; the
/// raw words, reports, and errors must agree after every operation.
fn check_scalar_equivalence<W: Word>(b1: u32, script: &[Op]) {
    let mut hot: HcbfWord<W> = HcbfWord::new();
    let mut reference: HcbfWord<W> = HcbfWord::new();
    for op in script {
        match *op {
            Op::Inc(p) => {
                let a = hot.increment(p, b1);
                let b = reference.increment_reference(p, b1);
                assert_eq!(a, b, "increment({p}) diverged");
            }
            Op::Dec(p) => {
                let a = hot.decrement(p, b1);
                let b = reference.decrement_reference(p, b1);
                assert_eq!(a, b, "decrement({p}) diverged");
            }
        }
        assert_eq!(hot.raw(), reference.raw(), "raw bits diverged after {op:?}");
        for p in 0..b1 {
            assert_eq!(hot.counter(p, b1), reference.counter(p, b1), "counter {p}");
        }
    }
}

/// Drives batches (including overflowing ones that must roll back) through
/// both tiers; results and final bits must agree.
fn check_batch_equivalence<W: Word>(b1: u32, batches: &[Vec<Op>]) {
    let mut hot: HcbfWord<W> = HcbfWord::new();
    let mut reference: HcbfWord<W> = HcbfWord::new();
    for batch in batches {
        let incs: Vec<u32> = batch
            .iter()
            .filter_map(|op| match op {
                Op::Inc(p) => Some(*p),
                Op::Dec(_) => None,
            })
            .collect();
        let decs: Vec<u32> = batch
            .iter()
            .filter_map(|op| match op {
                Op::Dec(p) => Some(*p),
                Op::Inc(_) => None,
            })
            .collect();
        assert_eq!(
            hot.increment_all(&incs, b1),
            reference.increment_all_reference(&incs, b1),
            "increment_all({incs:?}) diverged"
        );
        assert_eq!(hot.raw(), reference.raw(), "bits diverged after inc batch");
        assert_eq!(
            hot.decrement_all(&decs, b1),
            reference.decrement_all_reference(&decs, b1),
            "decrement_all({decs:?}) diverged"
        );
        assert_eq!(hot.raw(), reference.raw(), "bits diverged after dec batch");
        // Batched membership must meter exactly like the scalar loop.
        let probes: Vec<u32> = batch
            .iter()
            .map(|op| match op {
                Op::Inc(p) | Op::Dec(p) => *p,
            })
            .collect();
        assert_eq!(
            hot.query_all(&probes),
            reference.query_all_reference(&probes),
            "query_all({probes:?}) metering diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn u16_scalar_walks_match(script in ops(10, 60)) {
        check_scalar_equivalence::<u16>(10, &script);
    }

    #[test]
    fn u32_scalar_walks_match(script in ops(20, 100)) {
        check_scalar_equivalence::<u32>(20, &script);
    }

    #[test]
    fn u64_scalar_walks_match(script in ops(40, 160)) {
        check_scalar_equivalence::<u64>(40, &script);
    }

    #[test]
    fn u64_scalar_walks_match_small_b1(script in ops(6, 160)) {
        // Small b1 forces deep chains and frequent overflow errors.
        check_scalar_equivalence::<u64>(6, &script);
    }

    #[test]
    fn u128_scalar_walks_match(script in ops(90, 220)) {
        check_scalar_equivalence::<u128>(90, &script);
    }

    #[test]
    fn w256_scalar_walks_match(script in ops(160, 320)) {
        check_scalar_equivalence::<W256>(160, &script);
    }

    #[test]
    fn w512_scalar_walks_match(script in ops(330, 420)) {
        check_scalar_equivalence::<W512>(330, &script);
    }

    #[test]
    fn u64_batches_match_with_rollback(
        batches in prop::collection::vec(ops(8, 14), 0..12)
    ) {
        // b1 = 8 in a 64-bit word: batches overflow regularly, exercising
        // the all-or-nothing rollback in both tiers.
        check_batch_equivalence::<u64>(8, &batches);
    }

    #[test]
    fn u16_batches_match_with_rollback(
        batches in prop::collection::vec(ops(10, 10), 0..10)
    ) {
        // Word capacity 6: most non-trivial insert batches overflow.
        check_batch_equivalence::<u16>(10, &batches);
    }

    #[test]
    fn w256_batches_match_with_rollback(
        batches in prop::collection::vec(ops(240, 26), 0..8)
    ) {
        check_batch_equivalence::<W256>(240, &batches);
    }

    #[test]
    fn query_all_is_branchless_but_meters_identically(
        sets in prop::collection::vec(0u32..40, 0..24),
        probes in prop::collection::vec(0u32..40, 0..80),
    ) {
        let mut w: HcbfWord<u64> = HcbfWord::new();
        for &p in &sets {
            w.increment(p, 40).unwrap();
        }
        prop_assert_eq!(w.query_all(&probes), w.query_all_reference(&probes));
    }
}

#[test]
fn active_kernel_is_reported() {
    // Not an equivalence check — just pin that dispatch resolved and that
    // the forced-portable override is honoured when CI sets it.
    let k = Kernel::active();
    if std::env::var("MPCBF_KERNEL").as_deref() == Ok("portable") {
        assert_eq!(k, Kernel::Portable, "MPCBF_KERNEL=portable not honoured");
    }
    eprintln!(
        "kernel_equivalence ran against kernel `{}` (features: {})",
        k.name(),
        Kernel::cpu_features()
    );
}
