//! Crash-recovery property test: for a random operation stream crashed
//! at a random kill point, the recovered filter must be bit-identical
//! to a reference filter that applied exactly the durable prefix, with
//! zero false negatives on acknowledged keys — and recovery itself must
//! never panic or report a dirty scrub.
//!
//! Under `FsyncPolicy::Always` (the default) the durable prefix is
//! precisely determined by the kill site:
//!
//! * `WalAppend` (torn mid-frame) — the in-flight op never became
//!   durable; the prefix is every acknowledged op.
//! * `WalFsync` — the frame was written whole before the sync failed:
//!   the op is durable but unacknowledged, and replay must include it
//!   (its keys are in limbo for the client, so the zero-false-negative
//!   check exempts them).
//! * the snapshot/truncate sites — housekeeping crashed with no op in
//!   flight; the prefix is every acknowledged op.

use mpcbf::core::{CountingFilter, Filter, Mpcbf, MpcbfConfig};
use mpcbf::durability::{
    encode_frame, DurabilityOptions, DurableFilter, KillSite, KillSwitch, WalOp, WalRecord,
};
use mpcbf::hash::Murmur3;
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Clone)]
enum Op {
    Insert(u8),
    Remove(u8),
    InsertBatch(Vec<u8>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The shim's prop_oneof is unweighted; repeating the insert arm
    // biases the stream toward growth so removes find live keys.
    prop_oneof![
        any::<u8>().prop_map(Op::Insert),
        any::<u8>().prop_map(Op::Insert),
        any::<u8>().prop_map(Op::Remove),
        prop::collection::vec(any::<u8>(), 1..6).prop_map(Op::InsertBatch),
    ]
}

fn scratch_dir() -> PathBuf {
    static DIR_ID: AtomicU64 = AtomicU64::new(0);
    let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mpcbf-recovery-prop-{}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(50_000)
        .expected_items(500)
        .hashes(3)
        .seed(0xFA11)
        .build()
        .unwrap()
}

/// Applies one op to the reference filter (refusals discarded, exactly
/// as WAL replay does).
fn apply_ref(reference: &mut Mpcbf<u64, Murmur3>, op: &Op) {
    match op {
        Op::Insert(k) => {
            let _ = reference.insert_bytes_cost(&[*k]);
        }
        Op::Remove(k) => {
            let _ = reference.remove_bytes_cost(&[*k]);
        }
        Op::InsertBatch(keys) => {
            let views: Vec<&[u8]> = keys.iter().map(std::slice::from_ref).collect();
            let _ = reference.insert_batch_cost(&views);
        }
    }
}

/// Applies one op through the durable wrapper, recording acknowledged
/// key-count deltas into the oracle. Returns `Err` only on a kill.
fn apply_durable(
    durable: &mut DurableFilter<Mpcbf<u64, Murmur3>>,
    op: &Op,
    oracle: &mut HashMap<u8, i64>,
) -> Result<(), ()> {
    match op {
        Op::Insert(k) => match durable.insert_bytes(&[*k]) {
            Ok(()) => {
                *oracle.entry(*k).or_insert(0) += 1;
                Ok(())
            }
            Err(e) if e.is_kill() => Err(()),
            Err(_) => Ok(()), // deterministic filter refusal: still acked
        },
        Op::Remove(k) => match durable.remove_bytes(&[*k]) {
            Ok(()) => {
                *oracle.entry(*k).or_insert(0) -= 1;
                Ok(())
            }
            Err(e) if e.is_kill() => Err(()),
            Err(_) => Ok(()),
        },
        Op::InsertBatch(keys) => {
            let views: Vec<&[u8]> = keys.iter().map(std::slice::from_ref).collect();
            match durable.insert_batch_bytes(&views) {
                Ok(results) => {
                    for (k, r) in keys.iter().zip(&results) {
                        if r.is_ok() {
                            *oracle.entry(*k).or_insert(0) += 1;
                        }
                    }
                    Ok(())
                }
                Err(e) if e.is_kill() => Err(()),
                Err(_) => Ok(()),
            }
        }
    }
}

proptest! {
    // Every case fsyncs a real directory; keep the count I/O-friendly.
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_crash_point_recovers_the_exact_durable_prefix(
        ops in prop::collection::vec(op_strategy(), 1..50),
        kill_at_hint in any::<u64>(),
        site_idx in 0usize..KillSite::ALL.len(),
        byte_hint in any::<u64>(),
        snapshot_midway in any::<bool>(),
    ) {
        let site = KillSite::ALL[site_idx];
        let kill_at = (kill_at_hint % ops.len() as u64) as usize;
        let cfg = config();
        let dir = scratch_dir();
        let kill = KillSwitch::new();
        let mut durable: DurableFilter<Mpcbf<u64, Murmur3>> = DurableFilter::create(
            Mpcbf::new(cfg),
            DurabilityOptions::new(&dir).kill(kill.clone()),
        )
        .unwrap();
        let mut reference: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        let mut oracle: HashMap<u8, i64> = HashMap::new();

        for (i, op) in ops[..kill_at].iter().enumerate() {
            if snapshot_midway && i == kill_at / 2 {
                durable.snapshot().unwrap();
            }
            prop_assert!(
                apply_durable(&mut durable, op, &mut oracle).is_ok(),
                "unarmed op must not crash"
            );
            apply_ref(&mut reference, op);
        }

        // A budget below the frame size guarantees the armed append tears.
        let frame_len = encode_frame(&WalRecord {
            seq: 1,
            op: WalOp::Insert(vec![0]),
        })
        .len() as u64;
        kill.arm(site, 1 + byte_hint % (frame_len - 1));
        match site {
            KillSite::WalAppend | KillSite::WalFsync => {
                let op = &ops[kill_at];
                let before = oracle.clone();
                prop_assert!(
                    apply_durable(&mut durable, op, &mut oracle).is_err(),
                    "armed op must crash"
                );
                oracle = before; // a killed op is never acknowledged
                prop_assert_eq!(kill.fired(), Some(site));
                if site == KillSite::WalFsync {
                    // The frame hit the disk whole: durable, unacked.
                    // Its keys are in limbo — the client may not assume
                    // either outcome — so exempt them from the
                    // acked-presence check.
                    apply_ref(&mut reference, op);
                    match op {
                        Op::Insert(k) | Op::Remove(k) => {
                            oracle.remove(k);
                        }
                        Op::InsertBatch(keys) => {
                            for k in keys {
                                oracle.remove(k);
                            }
                        }
                    }
                }
            }
            _ => {
                let result = durable.snapshot();
                if site == KillSite::WalTruncate && result.is_ok() {
                    // With no op logged yet there is no sealed segment to
                    // purge, so the truncate site never executes. The
                    // scenario degrades to a crash right after a clean
                    // snapshot, which recovery must still handle.
                    kill.disarm();
                } else {
                    prop_assert!(result.is_err(), "armed snapshot must crash");
                    prop_assert_eq!(kill.fired(), Some(site));
                }
            }
        }
        drop(durable); // the crash

        let (recovered, report) = DurableFilter::open_or_recover(
            DurabilityOptions::new(&dir),
            || -> Mpcbf<u64, Murmur3> { Mpcbf::new(cfg) },
        )
        .unwrap();
        prop_assert_eq!(
            recovered.inner().raw_words(),
            reference.raw_words(),
            "recovered image must equal the durable prefix ({})", site
        );
        for (&key, &net) in &oracle {
            if net > 0 {
                prop_assert!(
                    recovered.contains_bytes(&[key]),
                    "false negative for acknowledged key {} ({})", key, site
                );
            }
        }
        prop_assert!(report.scrub_clean, "recovered image must scrub clean");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
