//! Property tests for the HCBF word codec — the heart of the paper.
//!
//! The word is driven with arbitrary increment/decrement sequences and
//! checked, after every operation, against a plain counter-array oracle
//! and the structural invariants of §III.B.1.

use mpcbf::core::hcbf::{HcbfWord, WordError};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Inc(u32),
    Dec(u32),
}

fn ops(b1: u32, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![(0..b1).prop_map(Op::Inc), (0..b1).prop_map(Op::Dec),],
        0..len,
    )
}

fn check_against_oracle<W: mpcbf::bitvec::Word>(b1: u32, script: &[Op]) {
    let mut word: HcbfWord<W> = HcbfWord::new();
    let mut oracle = vec![0u32; b1 as usize];
    for op in script {
        match *op {
            Op::Inc(p) => match word.increment(p, b1) {
                Ok(report) => {
                    oracle[p as usize] += 1;
                    assert_eq!(report.new_count, oracle[p as usize], "inc report at {p}");
                }
                Err(WordError::Overflow) => {
                    // Only legal when the word is genuinely full.
                    assert_eq!(
                        word.used_bits(b1),
                        W::BITS,
                        "overflow reported with spare capacity"
                    );
                }
                Err(e) => panic!("unexpected increment error {e:?}"),
            },
            Op::Dec(p) => match word.decrement(p, b1) {
                Ok(report) => {
                    assert!(
                        oracle[p as usize] > 0,
                        "decrement succeeded on zero counter"
                    );
                    oracle[p as usize] -= 1;
                    assert_eq!(report.new_count, oracle[p as usize], "dec report at {p}");
                }
                Err(WordError::ZeroCounter) => {
                    assert_eq!(oracle[p as usize], 0, "ZeroCounter on nonzero counter");
                }
                Err(e) => panic!("unexpected decrement error {e:?}"),
            },
        }
        // Full-state agreement and structural invariants after every op.
        word.check_invariants(b1).expect("invariants");
        for (p, &expect) in oracle.iter().enumerate() {
            assert_eq!(word.counter(p as u32, b1), expect, "counter {p}");
            assert_eq!(word.query(p as u32), expect > 0, "membership bit {p}");
        }
        assert_eq!(word.total_count(), oracle.iter().sum::<u32>());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn u64_word_matches_oracle(script in ops(40, 120)) {
        check_against_oracle::<u64>(40, &script);
    }

    #[test]
    fn u64_word_small_b1(script in ops(8, 120)) {
        check_against_oracle::<u64>(8, &script);
    }

    #[test]
    fn u32_word_matches_oracle(script in ops(20, 80)) {
        check_against_oracle::<u32>(20, &script);
    }

    #[test]
    fn u128_word_matches_oracle(script in ops(90, 200)) {
        check_against_oracle::<u128>(90, &script);
    }

    #[test]
    fn wide_word_matches_oracle(script in ops(160, 300)) {
        check_against_oracle::<mpcbf::bitvec::W256>(160, &script);
    }

    #[test]
    fn increments_then_decrements_restore_empty(
        points in prop::collection::vec(0u32..40, 0..24)
    ) {
        let mut word: HcbfWord<u64> = HcbfWord::new();
        for &p in &points {
            word.increment(p, 40).unwrap();
        }
        // Remove in a different (sorted) order than insertion.
        let mut sorted = points.clone();
        sorted.sort_unstable();
        for &p in &sorted {
            word.decrement(p, 40).unwrap();
        }
        prop_assert!(word.is_empty(), "word not empty after full drain");
    }

    #[test]
    fn used_bits_equals_b1_plus_total(
        points in prop::collection::vec(0u32..40, 0..24)
    ) {
        let mut word: HcbfWord<u64> = HcbfWord::new();
        for &p in &points {
            word.increment(p, 40).unwrap();
        }
        prop_assert_eq!(word.used_bits(40), 40 + points.len() as u32);
        // Level-size invariant: sizes are popcounts of the previous level.
        let sizes = word.level_sizes(40);
        prop_assert_eq!(sizes.iter().sum::<u32>(), word.used_bits(40));
    }
}
