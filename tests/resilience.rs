//! Saturation-safe operation, end to end: `ResilientMpcbf` must stay
//! lossless when the main structure overflows (zero false negatives,
//! exact drain on removal), its health counters must tell the truth, and
//! the combined seal/scrub machinery must localise injected damage in
//! either storage — the main word array or the spill gate.

use mpcbf::core::{
    CountingFilter, Filter, FilterError, Mpcbf, MpcbfConfig, ResilientMpcbf, SEGMENT_WORDS,
};
use mpcbf::hash::Murmur3;

/// A deliberately undersized filter: 64 words of 64 bits, `n_max = 1`,
/// so every word holds at most `w − b1` increments and a modest skewed
/// workload drives it past the cliff.
fn tiny_config(seed: u64) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(4_096)
        .expected_items(1_000)
        .hashes(3)
        .n_max(1)
        .seed(seed)
        .build()
        .unwrap()
}

/// A comfortably sized filter for the scrub-focused tests.
fn roomy_config(seed: u64) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(200_000)
        .expected_items(2_000)
        .hashes(3)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn saturation_is_lossless_zero_false_negatives() {
    let mut f: ResilientMpcbf<Murmur3> = ResilientMpcbf::new(tiny_config(1));
    // A skewed stream: 400 distinct keys, the first 20 repeated heavily.
    let mut stream: Vec<Vec<u8>> = Vec::new();
    for i in 0..400u32 {
        stream.push(format!("key-{i}").into_bytes());
    }
    for round in 0..30u32 {
        for i in 0..20u32 {
            stream.push(format!("key-{i}").into_bytes());
        }
        let _ = round;
    }
    for key in &stream {
        f.insert_bytes_cost(key)
            .expect("resilient insert must never fail");
    }
    assert!(
        f.spilled_inserts() > 0,
        "the workload was sized to overflow; nothing spilled"
    );
    for i in 0..400u32 {
        assert!(
            f.contains_bytes(format!("key-{i}").into_bytes().as_slice()),
            "false negative for key-{i} under saturation"
        );
    }
    assert_eq!(f.items(), stream.len() as u64);

    let h = f.health();
    assert!(h.is_spilling());
    assert_eq!(h.spilled_inserts, f.spilled_inserts());
    assert_eq!(h.spill_occupancy, f.spill_occupancy());
    assert_eq!(h.items + h.spill_occupancy, stream.len() as u64);
}

#[test]
fn drain_restores_the_empty_filter() {
    let mut f: ResilientMpcbf<Murmur3> = ResilientMpcbf::new(tiny_config(2));
    let hot = b"hammered".as_slice();
    let copies = 120u32;
    for _ in 0..copies {
        f.insert_bytes_cost(hot).unwrap();
    }
    assert!(f.health().is_spilling());
    for n in (0..copies).rev() {
        f.remove_bytes_cost(hot).unwrap();
        let expected = u64::from(n);
        assert_eq!(f.items(), expected, "drain miscounted at {n}");
    }
    assert_eq!(f.items(), 0);
    assert_eq!(f.spill_occupancy(), 0);
    assert!(!f.contains_bytes(hot), "fully drained key still present");
    assert!(matches!(
        f.remove_bytes_cost(hot),
        Err(FilterError::NotPresent)
    ));
}

#[test]
fn scrub_localises_damage_in_main_storage() {
    let mut f: ResilientMpcbf<Murmur3> = ResilientMpcbf::new(roomy_config(3));
    for i in 0..1_000u32 {
        f.insert_bytes_cost(format!("k{i}").into_bytes().as_slice())
            .unwrap();
    }
    let seal = f.seal();
    assert!(f.scrub(&seal).is_clean());
    let word = 3 * SEGMENT_WORDS + 7; // lands in main segment 3
    f.corrupt_main_word_xor(word, 1 << 17);
    let report = f.scrub(&seal);
    assert_eq!(report.corrupt_segments, vec![3]);
    // Undo restores a clean scrub.
    f.corrupt_main_word_xor(word, 1 << 17);
    assert!(f.scrub(&seal).is_clean());
}

#[test]
fn scrub_localises_damage_in_the_spill_gate() {
    let mut f: ResilientMpcbf<Murmur3> = ResilientMpcbf::new(tiny_config(4));
    let hot = b"hammered".as_slice();
    for _ in 0..100 {
        f.insert_bytes_cost(hot).unwrap();
    }
    assert!(f.health().is_spilling());
    let seal = f.seal();
    assert!(f.scrub(&seal).is_clean());
    f.corrupt_gate_limb_xor(0, 1 << 5);
    let report = f.scrub(&seal);
    let main_segments = f.main().seal().segments();
    assert_eq!(
        report.corrupt_segments,
        vec![main_segments],
        "gate damage must report offset past the main storage's segments"
    );
    f.corrupt_gate_limb_xor(0, 1 << 5);
    assert!(f.scrub(&seal).is_clean());
}

#[test]
fn simultaneous_damage_in_both_storages_is_fully_reported() {
    let mut f: ResilientMpcbf<Murmur3> = ResilientMpcbf::new(tiny_config(5));
    let hot = b"hammered".as_slice();
    for _ in 0..100 {
        f.insert_bytes_cost(hot).unwrap();
    }
    let seal = f.seal();
    let main_segments = f.main().seal().segments();
    f.corrupt_main_word_xor(0, 1 << 9);
    f.corrupt_gate_limb_xor(0, 1 << 9);
    let report = f.scrub(&seal);
    assert_eq!(report.corrupt_segments, vec![0, main_segments]);
    assert_eq!(
        report.segments_checked,
        main_segments + seal.gate.segments(),
        "scrub must walk every segment of both storages"
    );
}

#[test]
fn verify_reports_invariant_breaks_with_offset_segments() {
    let mut f: ResilientMpcbf<Murmur3> = ResilientMpcbf::new(roomy_config(6));
    for i in 0..500u32 {
        f.insert_bytes_cost(format!("k{i}").into_bytes().as_slice())
            .unwrap();
    }
    assert_eq!(f.verify(), Ok(()));
    // A lightly loaded word with bit 63 set breaks the level-walk
    // invariant ("dirty bits beyond the used region").
    let word = SEGMENT_WORDS + 1;
    f.corrupt_main_word_xor(word, 1 << 63);
    assert_eq!(
        f.verify(),
        Err(FilterError::CorruptionDetected { segment: 1 })
    );
    f.corrupt_main_word_xor(word, 1 << 63);
    assert_eq!(f.verify(), Ok(()));
}

#[test]
fn resilient_tracks_a_plain_mpcbf_until_the_first_overflow() {
    // Below saturation the wrapper must be a bit-transparent shell: its
    // main storage stays identical to a bare Mpcbf fed the same stream.
    let mut plain: Mpcbf<u64, Murmur3> = Mpcbf::new(roomy_config(7));
    let mut wrapped: ResilientMpcbf<Murmur3> = ResilientMpcbf::new(roomy_config(7));
    for i in 0..1_500u32 {
        let key = format!("k{i}").into_bytes();
        plain.insert_bytes_cost(&key).unwrap();
        wrapped.insert_bytes_cost(&key).unwrap();
    }
    assert_eq!(wrapped.spilled_inserts(), 0);
    assert_eq!(plain.raw_words(), wrapped.main().raw_words());
}
