//! End-to-end checks of the paper's headline claims, at test-sized scale.
//!
//! These are the assertions EXPERIMENTS.md reports at full scale; here
//! they run in seconds and pin the *shape* of every result: who wins,
//! in which direction, and the constant-access behaviour.

use mpcbf::core::{Cbf, CountingFilter, Mpcbf, MpcbfConfig, Pcbf};
use mpcbf::hash::Murmur3;
use mpcbf::workloads::synthetic::{SyntheticSpec, SyntheticWorkload};
use std::collections::HashSet;

const BIG_M: u64 = 800_000;
const N: usize = 20_000;

struct Run {
    fpr: f64,
    query_accesses: f64,
    update_accesses: f64,
}

fn run_filter<F: CountingFilter>(f: &mut F, w: &SyntheticWorkload) -> Run {
    let mut q = mpcbf::core::metrics::AccessStats::new();
    let mut live: HashSet<[u8; 5]> = HashSet::new();
    for k in &w.test_set {
        if f.insert_bytes_cost(k).is_ok() {
            live.insert(*k);
        }
    }
    for p in &w.churn.periods {
        for k in &p.deletes {
            if f.remove_bytes_cost(k).map(|c| q.removes.record(c)).is_ok() {
                live.remove(k);
            }
        }
        for k in &p.inserts {
            if f.insert_bytes_cost(k).map(|c| q.inserts.record(c)).is_ok() {
                live.insert(*k);
            }
        }
    }
    let mut fp = 0u64;
    let mut neg = 0u64;
    for key in &w.queries {
        let (hit, cost) = f.contains_bytes_cost(key);
        q.queries.record(cost);
        if !live.contains(key) {
            neg += 1;
            fp += u64::from(hit);
        }
    }
    Run {
        fpr: fp as f64 / neg as f64,
        query_accesses: q.queries.mean_accesses(),
        update_accesses: q.updates().mean_accesses(),
    }
}

fn workload() -> SyntheticWorkload {
    SyntheticWorkload::generate(&SyntheticSpec {
        test_set: N,
        queries: 300_000,
        churn_per_period: N / 5,
        periods: 1,
        member_ratio: 0.8,
        seed: 0xC1A1,
    })
}

fn mpcbf(g: u32, k: u32) -> Mpcbf<u64, Murmur3> {
    Mpcbf::new(
        MpcbfConfig::builder()
            .memory_bits(BIG_M)
            .expected_items(N as u64)
            .hashes(k)
            .accesses(g)
            .seed(9)
            .build()
            .unwrap(),
    )
}

#[test]
fn headline_fpr_ordering_at_k3() {
    // Fig. 7(a): PCBF-1 > PCBF-2 > CBF > MPCBF-1 > MPCBF-2.
    let w = workload();
    let cbf = run_filter(&mut Cbf::<Murmur3>::with_memory(BIG_M, 3, 9), &w);
    let pcbf1 = run_filter(&mut Pcbf::<Murmur3>::with_memory(BIG_M, 64, 3, 1, 9), &w);
    let pcbf2 = run_filter(&mut Pcbf::<Murmur3>::with_memory(BIG_M, 64, 3, 2, 9), &w);
    let mp1 = run_filter(&mut mpcbf(1, 3), &w);
    let mp2 = run_filter(&mut mpcbf(2, 3), &w);

    assert!(
        pcbf1.fpr > pcbf2.fpr,
        "PCBF-1 {} vs PCBF-2 {}",
        pcbf1.fpr,
        pcbf2.fpr
    );
    assert!(
        pcbf2.fpr > cbf.fpr,
        "PCBF-2 {} vs CBF {}",
        pcbf2.fpr,
        cbf.fpr
    );
    assert!(cbf.fpr > mp1.fpr, "CBF {} vs MPCBF-1 {}", cbf.fpr, mp1.fpr);
    assert!(
        mp1.fpr > mp2.fpr,
        "MPCBF-1 {} vs MPCBF-2 {}",
        mp1.fpr,
        mp2.fpr
    );
    // Abstract: "reduces the false positive rate by an order of magnitude".
    assert!(
        cbf.fpr / mp2.fpr > 5.0,
        "MPCBF-2 should be ≫ CBF: {} vs {}",
        mp2.fpr,
        cbf.fpr
    );
}

#[test]
fn access_counts_match_tables_one_and_two() {
    let w = workload();
    let cbf = run_filter(&mut Cbf::<Murmur3>::with_memory(BIG_M, 3, 9), &w);
    let pcbf1 = run_filter(&mut Pcbf::<Murmur3>::with_memory(BIG_M, 64, 3, 1, 9), &w);
    let pcbf2 = run_filter(&mut Pcbf::<Murmur3>::with_memory(BIG_M, 64, 3, 2, 9), &w);
    let mp1 = run_filter(&mut mpcbf(1, 3), &w);
    let mp2 = run_filter(&mut mpcbf(2, 3), &w);

    // Table I: one-access variants are exactly 1.0 per query.
    assert!((pcbf1.query_accesses - 1.0).abs() < 1e-9);
    assert!((mp1.query_accesses - 1.0).abs() < 1e-9);
    // g = 2 variants: fractional between 1 and 2 (short-circuiting).
    assert!(
        mp2.query_accesses > 1.0 && mp2.query_accesses < 2.0,
        "{}",
        mp2.query_accesses
    );
    assert!(pcbf2.query_accesses > 1.0 && pcbf2.query_accesses < 2.0);
    // CBF: between the g = 2 variants and its k = 3 worst case.
    assert!(cbf.query_accesses > mp2.query_accesses);
    assert!(cbf.query_accesses <= 3.0);

    // Table II: updates never short-circuit.
    assert!((pcbf1.update_accesses - 1.0).abs() < 1e-9);
    assert!((mp1.update_accesses - 1.0).abs() < 1e-9);
    assert!(
        (mp2.update_accesses - 2.0).abs() < 0.01,
        "{}",
        mp2.update_accesses
    );
    assert!(cbf.update_accesses > 2.5, "{}", cbf.update_accesses);
}

#[test]
fn k4_brings_mpcbf1_close_to_cbf() {
    // §IV.B: at k = 4 "MPCBF-1 has a little larger false positive rate
    // than CBF" — i.e. the two land within a small factor, while MPCBF-2
    // still clearly wins.
    let w = workload();
    let cbf = run_filter(&mut Cbf::<Murmur3>::with_memory(BIG_M, 4, 10), &w);
    let mp1 = run_filter(&mut mpcbf(1, 4), &w);
    let mp2 = run_filter(&mut mpcbf(2, 4), &w);
    assert!(
        mp1.fpr < cbf.fpr * 4.0 && cbf.fpr < mp1.fpr * 4.0,
        "k=4: MPCBF-1 {} and CBF {} should be close",
        mp1.fpr,
        cbf.fpr
    );
    assert!(
        mp2.fpr < cbf.fpr,
        "k=4: MPCBF-2 {} vs CBF {}",
        mp2.fpr,
        cbf.fpr
    );
}

#[test]
fn constant_accesses_regardless_of_memory() {
    // Fig. 11a: MPCBF-g's accesses don't grow with memory.
    let w = workload();
    for big_m in [600_000u64, 1_200_000, 2_400_000] {
        let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(
            MpcbfConfig::builder()
                .memory_bits(big_m)
                .expected_items(N as u64)
                .hashes(3)
                .seed(9)
                .build()
                .unwrap(),
        );
        let run = run_filter(&mut f, &w);
        assert!(
            (run.query_accesses - 1.0).abs() < 1e-9,
            "M={big_m}: {}",
            run.query_accesses
        );
    }
}
