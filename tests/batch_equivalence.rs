//! Batch/scalar equivalence: for **every** filter type in the workspace,
//! the batch operations (`contains_batch_cost` / `insert_batch_cost` /
//! `remove_batch_cost`) must be observationally identical to the scalar
//! loop — same per-key results, same summed [`OpCost`], and bit-identical
//! filter state (compared through the derived `Debug` rendering, which
//! prints the full counter state).
//!
//! Key ranges are deliberately tiny so batches contain duplicate keys —
//! the hard case for pipelined overrides, since a later duplicate must
//! observe the earlier one's effect within the *same* batch.
//!
//! The [`ScalarOnly`] wrapper hides every batch override, so the same
//! properties also exercise the default (delegating) trait
//! implementations, pinning down the contract they define.

use mpcbf::core::{
    BfG, BloomFilter, Cbf, CountingFilter, Filter, FilterError, Mpcbf, MpcbfConfig, OpCost, Pcbf,
};
use mpcbf::hash::Murmur3;
use mpcbf::variants::{DlCbf, Rcbf, TwoChoiceBloom, ViCbf};
use proptest::prelude::*;
use std::fmt::Debug;

/// Forwards only the scalar required methods, hiding any batch override,
/// so the trait's default batch implementations are the ones under test.
#[derive(Debug, Clone)]
struct ScalarOnly<F>(F);

impl<F: Filter> Filter for ScalarOnly<F> {
    fn contains_bytes_cost(&self, key: &[u8]) -> (bool, OpCost) {
        self.0.contains_bytes_cost(key)
    }
    fn insert_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        self.0.insert_bytes_cost(key)
    }
    fn memory_bits(&self) -> u64 {
        self.0.memory_bits()
    }
    fn num_hashes(&self) -> u32 {
        self.0.num_hashes()
    }
}

impl<F: CountingFilter> CountingFilter for ScalarOnly<F> {
    fn remove_bytes_cost(&mut self, key: &[u8]) -> Result<OpCost, FilterError> {
        self.0.remove_bytes_cost(key)
    }
}

fn to_bytes(keys: &[u16]) -> Vec<Vec<u8>> {
    keys.iter().map(|k| k.to_le_bytes().to_vec()).collect()
}

fn views(keys: &[Vec<u8>]) -> Vec<&[u8]> {
    keys.iter().map(|k| k.as_slice()).collect()
}

/// Scalar reference loops with the exact accounting the batch contract
/// promises (failed ops contribute no cost).
fn scalar_inserts<F: Filter>(
    f: &mut F,
    keys: &[Vec<u8>],
) -> (Vec<Result<(), FilterError>>, OpCost) {
    let mut results = Vec::new();
    let mut total = OpCost::zero();
    for k in keys {
        match f.insert_bytes_cost(k) {
            Ok(c) => {
                total = total.add(c);
                results.push(Ok(()));
            }
            Err(e) => results.push(Err(e)),
        }
    }
    (results, total)
}

fn scalar_queries<F: Filter>(f: &F, keys: &[Vec<u8>]) -> (Vec<bool>, OpCost) {
    let mut hits = Vec::new();
    let mut total = OpCost::zero();
    for k in keys {
        let (hit, c) = f.contains_bytes_cost(k);
        hits.push(hit);
        total = total.add(c);
    }
    (hits, total)
}

fn scalar_removes<F: CountingFilter>(
    f: &mut F,
    keys: &[Vec<u8>],
) -> (Vec<Result<(), FilterError>>, OpCost) {
    let mut results = Vec::new();
    let mut total = OpCost::zero();
    for k in keys {
        match f.remove_bytes_cost(k) {
            Ok(c) => {
                total = total.add(c);
                results.push(Ok(()));
            }
            Err(e) => results.push(Err(e)),
        }
    }
    (results, total)
}

/// Insert-only equivalence (membership filters without deletion).
fn check_filter<F: Filter + Clone + Debug>(
    name: &str,
    proto: F,
    inserts: &[Vec<u8>],
    queries: &[Vec<u8>],
) {
    let mut scalar = proto.clone();
    let mut batch = proto;

    let s = scalar_inserts(&mut scalar, inserts);
    let b = batch.insert_batch_cost(&views(inserts));
    assert_eq!(s, b, "{name}: insert results/cost diverged");
    assert_eq!(
        format!("{scalar:?}"),
        format!("{batch:?}"),
        "{name}: state diverged after inserts"
    );

    let s = scalar_queries(&scalar, queries);
    let b = batch.contains_batch_cost(&views(queries));
    assert_eq!(s, b, "{name}: query results/cost diverged");
}

/// Full insert/query/remove equivalence for counting filters.
fn check_counting<F: CountingFilter + Clone + Debug>(
    name: &str,
    proto: F,
    inserts: &[Vec<u8>],
    queries: &[Vec<u8>],
    removes: &[Vec<u8>],
) {
    let mut scalar = proto.clone();
    let mut batch = proto;

    let s = scalar_inserts(&mut scalar, inserts);
    let b = batch.insert_batch_cost(&views(inserts));
    assert_eq!(s, b, "{name}: insert results/cost diverged");
    assert_eq!(
        format!("{scalar:?}"),
        format!("{batch:?}"),
        "{name}: state diverged after inserts"
    );

    let s = scalar_queries(&scalar, queries);
    let b = batch.contains_batch_cost(&views(queries));
    assert_eq!(s, b, "{name}: query results/cost diverged");

    let s = scalar_removes(&mut scalar, removes);
    let b = batch.remove_batch_cost(&views(removes));
    assert_eq!(s, b, "{name}: remove results/cost diverged");
    assert_eq!(
        format!("{scalar:?}"),
        format!("{batch:?}"),
        "{name}: state diverged after removes"
    );
}

fn mpcbf(g: u32) -> Mpcbf<u64, Murmur3> {
    Mpcbf::new(
        MpcbfConfig::builder()
            .memory_bits(50_000)
            .expected_items(500)
            .hashes(3)
            .accesses(g)
            .seed(11)
            .build()
            .unwrap(),
    )
}

/// A deliberately tiny MPCBF so batches overflow words mid-batch,
/// exercising the rollback + per-key `Err` path of the overrides.
fn tiny_mpcbf() -> Mpcbf<u64, Murmur3> {
    Mpcbf::new(
        MpcbfConfig::builder()
            .memory_bits(256)
            .expected_items(1)
            .n_max(2)
            .hashes(3)
            .seed(5)
            .build()
            .unwrap(),
    )
}

fn key_lists() -> impl Strategy<Value = (Vec<u16>, Vec<u16>, Vec<u16>)> {
    (
        // Tiny key space ⇒ duplicates within a single batch are common.
        prop::collection::vec(0u16..48, 0..60),
        prop::collection::vec(0u16..96, 0..60),
        prop::collection::vec(0u16..48, 0..60),
    )
}

proptest! {
    #[test]
    fn counting_filters_batch_equals_scalar(
        (inserts, queries, removes) in key_lists()
    ) {
        let (i, q, r) = (to_bytes(&inserts), to_bytes(&queries), to_bytes(&removes));
        check_counting("CBF", Cbf::<Murmur3>::new(2_048, 3, 7), &i, &q, &r);
        check_counting("PCBF-1", Pcbf::<Murmur3>::new(128, 64, 3, 1, 7), &i, &q, &r);
        check_counting("PCBF-2", Pcbf::<Murmur3>::new(128, 64, 3, 2, 7), &i, &q, &r);
        check_counting("MPCBF-1", mpcbf(1), &i, &q, &r);
        check_counting("MPCBF-2", mpcbf(2), &i, &q, &r);
        check_counting("MPCBF-tiny", tiny_mpcbf(), &i, &q, &r);
        check_counting("dlCBF", DlCbf::<Murmur3>::with_memory(60_000, 12, 7), &i, &q, &r);
        check_counting("VI-CBF", ViCbf::<Murmur3>::with_memory(60_000, 3, 4, 7), &i, &q, &r);
        check_counting("RCBF", Rcbf::<Murmur3>::new(512, 12, 2, 7), &i, &q, &r);
    }

    #[test]
    fn insert_only_filters_batch_equals_scalar(
        (inserts, queries, _removes) in key_lists()
    ) {
        let (i, q) = (to_bytes(&inserts), to_bytes(&queries));
        check_filter("Bloom", BloomFilter::<Murmur3>::new(4_096, 3, 7), &i, &q);
        check_filter("BF-1", BfG::<Murmur3>::new(64, 64, 3, 1, 7), &i, &q);
        check_filter("BF-2", BfG::<Murmur3>::new(64, 64, 3, 2, 7), &i, &q);
        check_filter("2-choice", TwoChoiceBloom::<Murmur3>::new(4_096, 4, 7), &i, &q);
    }

    #[test]
    fn default_impls_batch_equals_scalar(
        (inserts, queries, removes) in key_lists()
    ) {
        let (i, q, r) = (to_bytes(&inserts), to_bytes(&queries), to_bytes(&removes));
        // The wrapper strips every override, so these runs go through the
        // trait's default batch implementations.
        check_counting("ScalarOnly<CBF>", ScalarOnly(Cbf::<Murmur3>::new(2_048, 3, 7)), &i, &q, &r);
        check_counting("ScalarOnly<MPCBF-1>", ScalarOnly(mpcbf(1)), &i, &q, &r);
        check_counting("ScalarOnly<MPCBF-tiny>", ScalarOnly(tiny_mpcbf()), &i, &q, &r);
        check_filter("ScalarOnly<Bloom>", ScalarOnly(BloomFilter::<Murmur3>::new(4_096, 3, 7)), &i, &q);
    }
}

#[test]
fn duplicate_heavy_batch_is_order_faithful() {
    // One batch holding many copies of one key plus interleaved others;
    // removals ask for one more copy than exists, so the final remove must
    // fail in both paths at the same position.
    let inserts = to_bytes(&[9, 9, 9, 3, 9, 3, 9]);
    let removes = to_bytes(&[9, 9, 9, 9, 9, 9]);
    let queries = to_bytes(&[9, 3, 77]);
    check_counting("MPCBF-1 dup", mpcbf(1), &inserts, &queries, &removes);
    check_counting(
        "CBF dup",
        Cbf::<Murmur3>::new(2_048, 3, 7),
        &inserts,
        &queries,
        &removes,
    );

    // CBF's wide counters accept all five duplicates, so the removal
    // results are exact: five succeed, the sixth fails.
    let mut f = Cbf::<Murmur3>::new(2_048, 3, 7);
    let i = views(&inserts);
    let r = views(&removes);
    let (ins, _) = f.insert_batch_cost(&i);
    assert!(ins.iter().all(Result::is_ok));
    let (rem, _) = f.remove_batch_cost(&r);
    assert_eq!(rem.iter().filter(|x| x.is_ok()).count(), 5);
    assert_eq!(rem[5], Err(FilterError::NotPresent));
}

#[test]
fn empty_batches_are_noops() {
    let mut f = mpcbf(1);
    let empty: Vec<&[u8]> = Vec::new();
    let before = format!("{f:?}");
    let (hits, c1) = f.contains_batch_cost(&empty);
    let (ins, c2) = f.insert_batch_cost(&empty);
    let (rem, c3) = f.remove_batch_cost(&empty);
    assert!(hits.is_empty() && ins.is_empty() && rem.is_empty());
    assert_eq!(c1, OpCost::zero());
    assert_eq!(c2, OpCost::zero());
    assert_eq!(c3, OpCost::zero());
    assert_eq!(format!("{f:?}"), before);
}
