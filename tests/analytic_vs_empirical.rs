//! Cross-checks the analysis crate against the real filters: measured
//! false-positive rates must land within statistical tolerance of the
//! paper's closed forms (Eqs. 1, 2, 4), and the overflow model must match
//! observed refusals.

use mpcbf::analysis::{
    cbf as cbf_model, heuristic, mpcbf as mpcbf_model, overflow, pcbf as pcbf_model,
};
use mpcbf::core::{Cbf, Filter, Mpcbf, MpcbfConfig, Pcbf};
use mpcbf::hash::Murmur3;

const N: u64 = 20_000;
const BIG_M: u64 = 1_000_000;
const TRIALS: u64 = 400_000;

/// Measured FPR must be within ±40% of the analytic value (binomial noise
/// at these trial counts is ≪ that; the slack covers model approximations
/// such as double hashing and integer b1).
fn assert_close(measured: f64, analytic: f64, what: &str) {
    assert!(
        (measured - analytic).abs() <= 0.4 * analytic + 3e-4,
        "{what}: measured {measured:.6} vs analytic {analytic:.6}"
    );
}

fn measure<F: Filter>(f: &F) -> f64 {
    let fp = (N..N + TRIALS)
        .filter(|i| f.contains_bytes(&i.to_le_bytes()))
        .count();
    fp as f64 / TRIALS as f64
}

#[test]
fn cbf_matches_eq1() {
    let mut f = Cbf::<Murmur3>::with_memory(BIG_M, 3, 101);
    for i in 0..N {
        f.insert(&i).unwrap();
    }
    assert_close(measure(&f), cbf_model::fpr(N, BIG_M / 4, 3), "CBF k=3");
}

#[test]
fn cbf_matches_eq1_k5() {
    let mut f = Cbf::<Murmur3>::with_memory(BIG_M, 5, 102);
    for i in 0..N {
        f.insert(&i).unwrap();
    }
    assert_close(measure(&f), cbf_model::fpr(N, BIG_M / 4, 5), "CBF k=5");
}

#[test]
fn pcbf1_matches_eq2() {
    let mut f = Pcbf::<Murmur3>::with_memory(BIG_M, 64, 3, 1, 103);
    for i in 0..N {
        f.insert(&i).unwrap();
    }
    let analytic = pcbf_model::fpr_pcbf1(N, BIG_M / 64, 64, 3);
    assert_close(measure(&f), analytic, "PCBF-1");
}

#[test]
fn pcbf2_matches_eq3() {
    let mut f = Pcbf::<Murmur3>::with_memory(BIG_M, 64, 4, 2, 104);
    for i in 0..N {
        f.insert(&i).unwrap();
    }
    // Eq. (3) uses the continuous k/g = 2 split; k = 4, g = 2 is exact.
    let analytic = pcbf_model::fpr_pcbf_g(N, BIG_M / 64, 64, 4, 2);
    assert_close(measure(&f), analytic, "PCBF-2");
}

#[test]
fn mpcbf1_matches_eq4() {
    let cfg = MpcbfConfig::builder()
        .memory_bits(BIG_M)
        .expected_items(N)
        .hashes(3)
        .seed(105)
        .build()
        .unwrap();
    let mut f: Mpcbf<u64> = Mpcbf::new(cfg);
    let mut refused = 0;
    for i in 0..N {
        if f.insert(&i).is_err() {
            refused += 1;
        }
    }
    assert!(refused <= 3, "too many refusals: {refused}");
    let analytic = mpcbf_model::fpr_mpcbf1_b1(N, cfg.shape().l, 3, cfg.shape().b1);
    assert_close(measure(&f), analytic, "MPCBF-1");
}

#[test]
fn mpcbf2_matches_eq8() {
    // k = 4, g = 2 gives an exact 2+2 split, matching Eq. (8)'s k/g.
    let cfg = MpcbfConfig::builder()
        .memory_bits(BIG_M)
        .expected_items(N)
        .hashes(4)
        .accesses(2)
        .seed(106)
        .build()
        .unwrap();
    let mut f: Mpcbf<u64> = Mpcbf::new(cfg);
    for i in 0..N {
        let _ = f.insert(&i);
    }
    let analytic = mpcbf_model::fpr_mpcbf_g_b1(N, cfg.shape().l, 4, 2, cfg.shape().b1);
    assert_close(measure(&f), analytic, "MPCBF-2");
}

#[test]
fn overflow_model_matches_observed_word_loads() {
    // With a deliberately small n_max, the number of words that exceed
    // capacity should match the binomial model within noise.
    let n_max = 4u32;
    let cfg = MpcbfConfig::builder()
        .memory_bits(BIG_M)
        .expected_items(N)
        .hashes(3)
        .n_max(n_max)
        .seed(107)
        .build()
        .unwrap();
    let mut f: Mpcbf<u64> = Mpcbf::new(cfg);
    let mut refused = 0u64;
    for i in 0..N {
        if f.insert(&i).is_err() {
            refused += 1;
        }
    }
    let l = cfg.shape().l;
    // Expected *elements* refused ≈ E[excess over capacity]; a cheap and
    // robust check: refusals happen, and the count is within an order of
    // magnitude of l·P[X > n_max] (each overflowing word refuses ≥ 1).
    let expected_words = l as f64 * overflow::overflow_exact(N, l, n_max + 1);
    assert!(refused > 0, "expected refusals at n_max = {n_max}");
    assert!(
        (refused as f64) < 20.0 * expected_words + 20.0,
        "refused {refused} ≫ model {expected_words}"
    );
}

#[test]
fn heuristic_keeps_overflow_negligible() {
    // Eq. (11) targets ≤ 1 *expected* word at capacity, so a handful of
    // refusals per 10k inserts is within spec — and refusals must never
    // cost a successfully inserted element.
    for seed in [1u64, 2, 3] {
        let n = N / 2;
        let cfg = MpcbfConfig::builder()
            .memory_bits(BIG_M)
            .expected_items(n)
            .hashes(3)
            .seed(seed)
            .build()
            .unwrap();
        let mut f: Mpcbf<u64> = Mpcbf::new(cfg);
        let mut stored = Vec::new();
        for i in 0..n {
            if f.insert(&i).is_ok() {
                stored.push(i);
            }
        }
        assert!(
            f.overflows() <= 5,
            "seed {seed}: {} refusals is far beyond the ~1-word design target",
            f.overflows()
        );
        for i in &stored {
            assert!(f.contains(i), "seed {seed}: stored element {i} lost");
        }
        let pick = heuristic::n_max_heuristic(n, cfg.shape().l, 1);
        assert_eq!(pick as u32, cfg.shape().n_max);
    }
}
