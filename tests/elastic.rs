//! Elastic capacity, end to end: across a 10x key ramp the stacked
//! analytic FPR envelope must hold empirically at every sampled point —
//! including *inside* an in-flight compaction — with zero false
//! negatives on the live set; the sliding-window variant must never go
//! false-negative in-window across a full rotation cycle; the durable
//! elastic pool must recover a crash mid-scale-up with every acked key
//! present; and an elastic server must shed with RETRY_LATER while a
//! shard reorganises, with the client's backoff absorbing every shed.

use mpcbf::concurrent::ElasticShardedMpcbf;
use mpcbf::core::{CapacityPolicy, ElasticMpcbf, Filter, MpcbfConfig, SlidingWindowMpcbf};
use mpcbf::durability::{DurabilityOptions, DurableElasticSharded, FsyncPolicy};
use mpcbf::hash::Murmur3;
use mpcbf::server::{Client, Server, ServerConfig};
use mpcbf::workloads::RampSpec;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scratch_dir(tag: &str) -> PathBuf {
    static DIR_ID: AtomicU64 = AtomicU64::new(0);
    let id = DIR_ID.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mpcbf-elastic-{tag}-{}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The envelope is an expectation over hash draws; an empirical rate
/// over `n` probes fluctuates around it. Four binomial standard
/// deviations bounds the noise far beyond any plausible flake rate
/// while still catching a broken bound (which overshoots structurally,
/// not statistically).
fn assert_within_envelope(empirical: f64, envelope: f64, probes: usize, when: &str) {
    let sigma = (envelope * (1.0 - envelope) / probes as f64).sqrt();
    assert!(
        empirical <= envelope + 4.0 * sigma + 1e-9,
        "{when}: empirical FPR {empirical:.6} exceeds envelope {envelope:.6} (+4σ = {:.6})",
        envelope + 4.0 * sigma
    );
}

fn ramp_config(base_items: u64, seed: u64) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(16 * base_items)
        .expected_items(base_items)
        .hashes(3)
        .seed(seed)
        .build()
        .expect("ramp config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance property: across a 10x ramp the stacked
    /// analytic bound is never exceeded empirically — at phase
    /// boundaries and at batch-granular points inside every
    /// compaction — and the live set never goes false-negative.
    #[test]
    fn stacked_envelope_holds_across_tenfold_ramp(
        base_items in 1_500u64..4_000,
        key_seed in any::<u64>(),
        filter_seed in 1u64..1_000,
    ) {
        let spec = RampSpec::tenfold(base_items, key_seed);
        let probes = spec.negative_probes(10_000);
        let mut filter: ElasticMpcbf<Murmur3> =
            ElasticMpcbf::manual(ramp_config(base_items, filter_seed), CapacityPolicy::default())
                .expect("manual elastic");
        let mut live: Vec<Vec<u8>> = Vec::new();
        let empirical = |f: &ElasticMpcbf<Murmur3>| {
            let hits = probes.iter().filter(|p| f.contains_bytes(p)).count();
            hits as f64 / probes.len() as f64
        };
        let mut mid_samples = 0u32;
        for (i, phase) in spec.phases().into_iter().enumerate() {
            for key in &phase.keys {
                filter.insert_bytes(key).expect("elastic insert");
            }
            live.extend(phase.keys);
            while let Some(plan) = filter.scale_plan() {
                filter.apply_scale(&plan).expect("apply scale");
                prop_assert!(filter.begin_compaction(), "scale-up must start a migration");
                let step = (live.len() / 8).max(64);
                while filter.compacting() {
                    filter.step_compaction(step);
                    // The envelope must hold with keys split between the
                    // source and target generations, not just at rest.
                    assert_within_envelope(
                        empirical(&filter),
                        filter.fpr_envelope(),
                        probes.len(),
                        &format!("phase {i}, mid-compaction"),
                    );
                    mid_samples += 1;
                }
            }
            prop_assert_eq!(filter.items(), phase.target_items);
            assert_within_envelope(
                empirical(&filter),
                filter.fpr_envelope(),
                probes.len(),
                &format!("phase {i}, at rest"),
            );
            for (k, key) in live.iter().enumerate() {
                prop_assert!(filter.contains_bytes(key), "false negative on live key {k}");
            }
        }
        prop_assert!(filter.scale_events() > 0, "a 10x ramp must scale");
        prop_assert!(mid_samples > 0, "the ramp must sample inside a migration");
        filter.verify().expect("elastic invariants");
    }
}

#[test]
fn sliding_window_never_goes_false_negative_in_window() {
    let slots = 4usize;
    let per_epoch = 1_500u64;
    let mut window: SlidingWindowMpcbf<Murmur3> =
        SlidingWindowMpcbf::new(ramp_config(per_epoch, 0x77), slots);
    let mut epochs: Vec<Vec<Vec<u8>>> = Vec::new();
    // A full rotation cycle and then a second lap, so every slot has
    // been retired and reused at least once.
    for epoch in 0..(2 * slots as u64 + 1) {
        let keys: Vec<Vec<u8>> = (0..per_epoch)
            .map(|i| format!("window-{epoch}-{i}").into_bytes())
            .collect();
        for key in &keys {
            window.insert_bytes(key).expect("window insert");
        }
        epochs.push(keys);
        // Everything inserted in the last `slots` epochs is in-window
        // and must answer present — the zero-false-negative contract.
        for keys in epochs.iter().rev().take(slots) {
            for key in keys {
                assert!(window.contains_bytes(key), "in-window false negative");
            }
        }
        window.rotate();
    }
    assert_eq!(window.rotations(), 2 * slots as u64 + 1);
    window.verify().expect("window invariants");
}

#[test]
fn durable_elastic_recovers_a_crash_mid_scale_up() {
    let dir = scratch_dir("crash");
    let config = ramp_config(1_000, 0xE1A5);
    let opts = || DurabilityOptions::new(&dir).fsync(FsyncPolicy::Always);
    let mut acked: Vec<Vec<u8>> = Vec::new();
    {
        let mut durable: DurableElasticSharded<Murmur3> =
            DurableElasticSharded::create(config, 2, CapacityPolicy::default(), opts())
                .expect("create durable elastic");
        // Push far past capacity; stop the moment a migration is in
        // flight so the "crash" lands mid-scale-up.
        for i in 0u64..40_000 {
            let key = format!("crash-{i}").into_bytes();
            durable.insert_bytes(&key).expect("durable insert");
            acked.push(key);
            let stats = durable.inner().stats();
            if stats.scale_events > 0 && stats.compacting_shards > 0 && i > 5_000 {
                break;
            }
        }
        let stats = durable.inner().stats();
        assert!(stats.scale_events > 0, "workload must trigger a scale-up");
        assert!(stats.compacting_shards > 0, "crash must land mid-migration");
        // Under FsyncPolicy::Always every acked record is already on
        // disk; forgetting the handle is a same-process stand-in for
        // SIGKILL (no flush, no snapshot, no graceful close).
        std::mem::forget(durable);
    }

    let (recovered, report) = DurableElasticSharded::<Murmur3>::open_or_recover(opts(), || {
        ElasticShardedMpcbf::manual(config, 2, CapacityPolicy::default()).expect("fallback pool")
    })
    .expect("recover");
    assert!(report.scrub_clean, "recovered pool must verify clean");
    let stats = recovered.inner().stats();
    assert!(
        stats.scale_events > 0,
        "the logged scale-up must survive recovery"
    );
    for (i, key) in acked.iter().enumerate() {
        assert!(
            recovered.contains_bytes(key),
            "acked key {i} lost across the crash"
        );
    }
    recovered.inner().verify().expect("recovered invariants");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn elastic_server_sheds_and_the_client_backoff_absorbs_it() {
    let dir = scratch_dir("server");
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        metrics_addr: None,
        durability: DurabilityOptions::new(&dir).fsync(FsyncPolicy::EveryN(256)),
        // Tiny geometry: a few thousand keys are a 10x overload, so
        // scale-ups (and their shed windows) are guaranteed.
        filter: MpcbfConfig::builder()
            .memory_bits(65_536)
            .expected_items(1_000)
            .hashes(3)
            .seed(5)
            .build()
            .expect("server config"),
        shards: 2,
        elastic: true,
    })
    .expect("start elastic server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let total = 10_000u64;
    for i in 0..total {
        assert!(
            client
                .insert(&i.to_le_bytes())
                .expect("insert")
                .is_applied(),
            "insert {i} must eventually apply through the backoff"
        );
    }
    let stats = client.stats_json().expect("stats");
    let counter = |name: &str| -> u64 {
        stats
            .split(&format!("\"{name}\":"))
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("{name} missing from stats: {stats}"))
    };
    assert!(counter("scale_events") > 0, "overload must scale: {stats}");
    assert!(
        counter("shed") > 0,
        "a reorganising shard must shed at least one mutation with RETRY_LATER: {stats}"
    );
    for i in 0..total {
        assert!(client.query(&i.to_le_bytes()).expect("query"), "FN {i}");
    }
    server.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
