//! Cross-crate distribution scenario: build partial filters on "nodes",
//! merge them, ship the result over the wire format, and use the decoded
//! image as the pushdown filter in a MapReduce join — the full §V
//! deployment path, in one test file.

use mpcbf::core::{Cbf, Filter, Mpcbf, MpcbfConfig};
use mpcbf::hash::Murmur3;
use mpcbf::mapreduce::{reduce_side_join, Broadcast, JoinConfig};
use mpcbf::workloads::patents::{PatentDataset, PatentSpec};
use proptest::prelude::*;

fn config(memory: u64, items: u64, seed: u64) -> MpcbfConfig {
    MpcbfConfig::builder()
        .memory_bits(memory)
        .expected_items(items)
        .hashes(3)
        // Eq. (11) deliberately sits at ≈1 expected word overflow, so a
        // fixed seed can land exactly on a refused insert/absorb. These
        // tests assert exact end-to-end behaviour (every key present, so
        // the pushdown join equals the unfiltered join), which needs
        // deterministic headroom rather than the at-margin heuristic.
        .n_max(10)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn distributed_build_then_broadcast_then_join() {
    let spec = PatentSpec::default().scaled_down(256);
    let data = PatentDataset::generate(&spec);
    let left: Vec<(u32, u16)> = data.patents.iter().map(|p| (p.id, p.year)).collect();
    let right: Vec<(u32, u32)> = data.citations.iter().map(|c| (c.cited, c.citing)).collect();
    let n_keys = left.len() as u64;
    let cfg = config(40 * n_keys, n_keys, 2026);

    // "Nodes" build partial filters over shards of the key table …
    let shards: Vec<&[(u32, u16)]> = left.chunks(left.len().div_ceil(3)).collect();
    let mut partials: Vec<Mpcbf<u64, Murmur3>> = shards
        .iter()
        .map(|shard| {
            let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
            for (k, _) in *shard {
                f.insert(k).unwrap();
            }
            f
        })
        .collect();

    // … the coordinator merges them …
    let mut merged = partials.remove(0);
    for p in &partials {
        merged.absorb(p).unwrap();
    }
    assert_eq!(merged.items(), n_keys);

    // … encodes for DistributedCache, every mapper decodes its copy.
    let image = merged.encode();
    let broadcast = Broadcast::new(image.clone(), image.len() as u64);
    let decoded = Mpcbf::<u64, Murmur3>::decode(broadcast.get()).unwrap();

    // The decoded filter drives the pushdown; result must equal no-filter.
    let (rows_plain, _) =
        reduce_side_join(&JoinConfig::default(), left.clone(), right.clone(), None);
    let (rows_push, stats) = reduce_side_join(&JoinConfig::default(), left, right, Some(&decoded));
    assert_eq!(rows_plain.len(), rows_push.len());
    assert!(stats.filtered_out > 0, "decoded filter should still filter");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mpcbf_codec_roundtrips_arbitrary_populations(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        seed in any::<u64>(),
    ) {
        let cfg = config(100_000, 1_000, seed);
        let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        for k in &keys {
            let _ = f.insert(k);
        }
        let decoded = Mpcbf::<u64, Murmur3>::decode(&f.encode()).unwrap();
        prop_assert_eq!(decoded.shape(), f.shape());
        prop_assert_eq!(decoded.items(), f.items());
        for k in &keys {
            prop_assert_eq!(decoded.contains(k), f.contains(k));
        }
        for probe in 0u64..2_000 {
            prop_assert_eq!(decoded.contains(&probe), f.contains(&probe));
        }
    }

    #[test]
    fn cbf_codec_roundtrips_arbitrary_populations(
        keys in prop::collection::vec(any::<u64>(), 0..300),
        k in 1u32..=6,
    ) {
        let mut f = Cbf::<Murmur3>::new(4_096, k, 9);
        for key in &keys {
            f.insert(key).unwrap();
        }
        let decoded = Cbf::<Murmur3>::decode(&f.encode()).unwrap();
        for key in &keys {
            prop_assert!(decoded.contains(key));
        }
        for probe in 0u64..2_000 {
            prop_assert_eq!(decoded.contains(&probe), f.contains(&probe));
        }
    }

    #[test]
    fn random_corruption_never_yields_a_filter_silently(
        flip_byte in 6usize..80,
        flip_bit in 0u8..8,
    ) {
        // Corrupt a byte in the header/payload region (skipping magic and
        // kind so we test CRC coverage, not just magic checks).
        let cfg = config(50_000, 500, 3);
        let mut f: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        for i in 0..200u64 {
            let _ = f.insert(&i);
        }
        let mut image = f.encode();
        let pos = flip_byte % (image.len() - 10);
        let pos = pos.max(6);
        image[pos] ^= 1 << flip_bit;
        prop_assert!(Mpcbf::<u64, Murmur3>::decode(&image).is_err());
    }

    #[test]
    fn merge_equals_union_build(
        xs in prop::collection::vec(0u64..100_000, 0..150),
        ys in prop::collection::vec(100_000u64..200_000, 0..150),
    ) {
        let cfg = config(200_000, 2_000, 8);
        let mut a: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        let mut b: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        let mut whole: Mpcbf<u64, Murmur3> = Mpcbf::new(cfg);
        for x in &xs {
            a.insert(x).unwrap();
            whole.insert(x).unwrap();
        }
        for y in &ys {
            b.insert(y).unwrap();
            whole.insert(y).unwrap();
        }
        a.absorb(&b).unwrap();
        prop_assert_eq!(a.raw_words(), whole.raw_words(), "merged != whole build");
    }
}
